// Package committer implements pTest's master-side command issuer: a
// master thread that walks the merged test pattern and issues each entry
// as a remote command over the bridge, recording a Definition 2 state
// record per command. It corresponds to the "Committer" box of the
// paper's Figure 2.
package committer

import (
	"repro/internal/bridge"
	"repro/internal/clock"
	"repro/internal/master"
	"repro/internal/pattern"
	"repro/internal/pcore"
	"repro/internal/recording"
)

// PriorityPolicy picks the priority argument for TC and TCH commands of a
// logical task (the PFA alphabet carries no arguments, so the committer
// supplies them deterministically).
type PriorityPolicy func(task, seq int) pcore.Priority

// DefaultPriorityPolicy assigns each logical task the unique priority
// 2+task for TC (the paper forks each task "with a unique priority") and
// rotates within a band for TCH.
func DefaultPriorityPolicy(task, seq int) pcore.Priority {
	return pcore.Priority(2 + (task+seq)%(pcore.NumPriorities-2)) // keep 0,1 for system use
}

// Result is the outcome of one issued command.
type Result struct {
	Index     int // position in the merged pattern
	Entry     pattern.Entry
	Status    bridge.Status
	TaskState pcore.State
	TaskID    pcore.TaskID
	IssuedAt  clock.Cycles
	DoneAt    clock.Cycles
}

// Committer issues a merged pattern over a bridge client.
type Committer struct {
	client  *bridge.Client
	merged  pattern.Merged
	perTask [][]string
	policy  PriorityPolicy
	journal *recording.Journal
	now     func() clock.Cycles

	// Gap is the master-side administrative delay (cycles) between
	// consecutive commands. It sets the stress density: a small gap
	// bombards the slave faster than its tasks can run; a larger gap
	// lets the slave execute between perturbations. Default 10.
	Gap int

	Results  []Result
	Finished bool
	Aborted  bool // stopped early on a crashed/mute slave
}

// New creates a committer for the merged pattern. journal may be nil to
// skip state recording; now supplies platform virtual time for records
// (nil uses zero).
func New(client *bridge.Client, merged pattern.Merged, policy PriorityPolicy,
	journal *recording.Journal, now func() clock.Cycles) *Committer {
	if policy == nil {
		policy = DefaultPriorityPolicy
	}
	if now == nil {
		now = func() clock.Cycles { return 0 }
	}
	return &Committer{
		client:  client,
		merged:  merged,
		perTask: merged.PerTask(),
		policy:  policy,
		journal: journal,
		now:     now,
		Gap:     10,
		// One Result per pattern entry: size the slice once instead of
		// growing it through the whole run.
		Results: make([]Result, 0, merged.Len()),
	}
}

// Merged returns the pattern being issued.
func (c *Committer) Merged() pattern.Merged { return c.merged }

// Progress returns the number of commands completed so far.
func (c *Committer) Progress() int { return len(c.Results) }

// ThreadBody is the master-thread entry: issue every entry of the merged
// pattern in order, blocking on each reply. If the slave dies the RPC
// never returns and the thread stays parked — the bug detector owns the
// timeout; the platform's shutdown unwinds the thread.
func (c *Committer) ThreadBody(ctx *master.Ctx) {
	for i, e := range c.merged.Entries {
		code, ok := bridge.CodeOf(e.Symbol)
		if !ok {
			// Unknown symbol in the pattern: record and skip.
			c.Results = append(c.Results, Result{
				Index: i, Entry: e, Status: bridge.StatusBadRequest, IssuedAt: c.now(),
			})
			continue
		}
		arg1 := uint32(0xffffffff)
		if code == bridge.CodeTC || code == bridge.CodeTCH {
			arg1 = uint32(c.policy(e.Task, e.Seq))
		}
		issued := c.now()
		rep, err := c.client.Call(ctx, code, uint32(e.Task), arg1)
		if err != nil {
			c.Aborted = true
			return
		}
		res := Result{
			Index:     i,
			Entry:     e,
			Status:    rep.Status,
			TaskState: pcore.State(rep.Value),
			TaskID:    pcore.TaskID(rep.Aux),
			IssuedAt:  issued,
			DoneAt:    c.now(),
		}
		c.Results = append(c.Results, res)
		c.record(res)
		// The administrative delay between commands sets the stress
		// density; see Gap.
		ctx.Compute(c.Gap)
	}
	c.Finished = true
}

// record appends the Definition 2 five-tuple for a completed command.
func (c *Committer) record(res Result) {
	if c.journal == nil {
		return
	}
	tp := c.perTask[res.Entry.Task]
	sn := res.Entry.Seq + 1 // 1-based, as in Figure 4
	rec := recording.Record{
		QM:  "issue:" + res.Entry.Symbol,
		QS:  res.TaskState.String(),
		TP:  tp,
		SN:  sn,
		Sub: recording.Remaining(tp, sn),
	}
	c.journal.Append(uint64(res.DoneAt), res.Entry.Task, rec)
}

// StatusCounts aggregates result statuses, for reports.
func (c *Committer) StatusCounts() map[bridge.Status]int {
	out := make(map[bridge.Status]int, 4) // a run rarely sees more than a few distinct statuses
	for _, r := range c.Results {
		out[r.Status]++
	}
	return out
}
