package committer

import (
	"strings"
	"testing"

	"repro/internal/bridge"
	"repro/internal/committee"
	"repro/internal/hw"
	"repro/internal/master"
	"repro/internal/pattern"
	"repro/internal/pcore"
	"repro/internal/recording"
)

// pump advances the standalone master + committee world until the
// committer thread finishes or the budget runs out. Unlike the platform
// package this drives the pieces manually, exercising the committer in
// isolation.
func pump(t *testing.T, os *master.OS, cmte *committee.Committee, client *bridge.Client, kern *pcore.Kernel, budget int) {
	t.Helper()
	for i := 0; i < budget; i++ {
		cmte.Poll()
		kern.RunUntilIdle(4)
		client.PumpReplies()
		if _, ran := os.Step(); !ran {
			if cmte.Poll() == 0 && client.InFlight() == 0 && !os.Ready() {
				return
			}
		}
	}
}

type world struct {
	os     *master.OS
	kern   *pcore.Kernel
	client *bridge.Client
	cmte   *committee.Committee
}

func newWorld(t *testing.T) *world {
	t.Helper()
	soc := hw.New(hw.Config{MailboxLatency: 1})
	hub, err := bridge.NewHub(soc, 0)
	if err != nil {
		t.Fatal(err)
	}
	kern := pcore.New(pcore.Config{})
	t.Cleanup(kern.Shutdown)
	os := master.New()
	t.Cleanup(os.Shutdown)
	client := bridge.NewClient(hub, os)
	cmte := committee.New(hub, kern, func(logical uint32) committee.CreateSpec {
		return committee.CreateSpec{Name: "spin", Prio: 5, Entry: func(c *pcore.Ctx) {
			for {
				c.Yield()
			}
		}}
	})
	// Interrupt-free manual pumping: deliver doorbells immediately.
	soc.Clock.Schedule(0, func() {})
	t.Cleanup(func() { soc.Clock.Drain(1000000) })
	// Mailbox latency events must fire for IRQs; but Poll/PumpReplies read
	// the FIFOs directly, so no IRQ wiring is needed here.
	return &world{os: os, kern: kern, client: client, cmte: cmte}
}

func mustMerge(t *testing.T, sources [][]string, op pattern.Op) pattern.Merged {
	t.Helper()
	m, err := pattern.Merge(sources, op, nil, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCommitterIssuesAllCommands(t *testing.T) {
	w := newWorld(t)
	merged := mustMerge(t, [][]string{{"TC", "TS", "TR", "TD"}}, pattern.OpSequential)
	j := recording.NewJournal(0)
	cmt := New(w.client, merged, nil, j, nil)
	w.os.Spawn("committer", cmt.ThreadBody)
	pump(t, w.os, w.cmte, w.client, w.kern, 10000)
	if !cmt.Finished {
		t.Fatalf("finished=%v progress=%d", cmt.Finished, cmt.Progress())
	}
	if len(cmt.Results) != 4 {
		t.Fatalf("results %d", len(cmt.Results))
	}
	for i, r := range cmt.Results {
		if r.Status != bridge.StatusOK {
			t.Fatalf("result %d: %v", i, r.Status)
		}
	}
	if j.Len() != 4 {
		t.Fatalf("journal %d", j.Len())
	}
}

func TestCommitterRecordsDefinition2Fields(t *testing.T) {
	w := newWorld(t)
	merged := mustMerge(t, [][]string{{"TC", "TD"}, {"TC", "TY"}}, pattern.OpRoundRobin)
	j := recording.NewJournal(0)
	cmt := New(w.client, merged, nil, j, nil)
	w.os.Spawn("committer", cmt.ThreadBody)
	pump(t, w.os, w.cmte, w.client, w.kern, 10000)
	if !cmt.Finished {
		t.Fatal("not finished")
	}
	entries := j.Entries()
	if len(entries) != 4 {
		t.Fatalf("entries %d", len(entries))
	}
	first := entries[0].Record
	if first.QM != "issue:TC" {
		t.Fatalf("QM %q", first.QM)
	}
	if first.SN != 1 {
		t.Fatalf("SN %d", first.SN)
	}
	if strings.Join(first.TP, " ") != "TC TD" {
		t.Fatalf("TP %v", first.TP)
	}
	if strings.Join(first.Sub, " ") != "TD" {
		t.Fatalf("Sub %v", first.Sub)
	}
	if first.QS == "" {
		t.Fatal("QS empty")
	}
}

func TestCommitterUnknownSymbolSkipped(t *testing.T) {
	w := newWorld(t)
	merged := mustMerge(t, [][]string{{"TC", "BOGUS", "TD"}}, pattern.OpSequential)
	cmt := New(w.client, merged, nil, nil, nil)
	w.os.Spawn("committer", cmt.ThreadBody)
	pump(t, w.os, w.cmte, w.client, w.kern, 10000)
	if !cmt.Finished {
		t.Fatal("not finished")
	}
	counts := cmt.StatusCounts()
	if counts[bridge.StatusBadRequest] != 1 || counts[bridge.StatusOK] != 2 {
		t.Fatalf("counts %v", counts)
	}
}

func TestDefaultPriorityPolicyUnique(t *testing.T) {
	seen := map[pcore.Priority]bool{}
	for task := 0; task < 8; task++ {
		p := DefaultPriorityPolicy(task, 0)
		if p < 2 || p >= pcore.NumPriorities {
			t.Fatalf("priority %d out of band", p)
		}
		if seen[p] {
			t.Fatalf("priority %d reused within first 8 tasks", p)
		}
		seen[p] = true
	}
}

func TestCustomPolicyApplied(t *testing.T) {
	w := newWorld(t)
	merged := mustMerge(t, [][]string{{"TC"}}, pattern.OpSequential)
	policy := func(task, seq int) pcore.Priority { return 11 }
	cmt := New(w.client, merged, policy, nil, nil)
	w.os.Spawn("committer", cmt.ThreadBody)
	pump(t, w.os, w.cmte, w.client, w.kern, 10000)
	if !cmt.Finished || len(cmt.Results) != 1 {
		t.Fatal("incomplete")
	}
	info, ok := w.kern.TaskInfo(cmt.Results[0].TaskID)
	if !ok || info.Prio != 11 {
		t.Fatalf("prio %d", info.Prio)
	}
}
