// Package workload is the pluggable registry of slave workloads: the
// named scenarios a suite cell stress-tests (quicksort, dining
// philosophers, producer/consumer, ...). Spec is the declarative form
// that appears in suite matrices — and in cell-identity keys, so its
// field set and tags are part of the on-disk cache contract. The
// registry resolves a spec's name to a per-trial factory constructor;
// every layer (suite validation, cell execution, the CLI, replay)
// routes workload names through it, so adding a scenario is one
// Register call, immediately usable everywhere.
package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/clock"
	"repro/internal/committee"
	"repro/internal/pcore"
)

// Knob defaults, applied by WithDefaults so an omitted knob and its
// explicit default produce the same spec — and the same cell identity
// keys. The CLI flags default to the same constants.
const (
	// DefaultRounds is the philosophers' eating-round budget.
	DefaultRounds = 100000
	// DefaultItems is the producer/consumer item count.
	DefaultItems = 10
	// DefaultHogBursts is the priority-inversion hog's burst count.
	DefaultHogBursts = 100000
)

// Spec names a slave workload plus its kernel configuration, including
// the fault plan that seeds the bugs campaigns hunt. Like the tool
// spec, it is a closed struct hashed into cell-identity keys: fields
// are only appended (always omitempty), never reordered or retagged.
type Spec struct {
	// Name selects the workload in the registry.
	Name string `json:"name"`
	// Seed is the workload's own data seed (quicksort input).
	Seed uint64 `json:"seed,omitempty"`
	// Rounds is the philosophers' eating-round budget.
	Rounds int `json:"rounds,omitempty"`
	// Items is the producer/consumer item count.
	Items int `json:"items,omitempty"`
	// HogBursts is the priority-inversion hog's burst count.
	HogBursts int `json:"hog_bursts,omitempty"`

	// Kernel knobs.
	GCEvery   int `json:"gc_every,omitempty"`
	Quantum   int `json:"quantum,omitempty"`
	MaxTasks  int `json:"max_tasks,omitempty"`
	StackSize int `json:"stack_size,omitempty"`

	// Fault plan.
	GCLeakEvery           int `json:"gc_leak_every,omitempty"`
	DropResumeEvery       int `json:"drop_resume_every,omitempty"`
	MisplacePriorityEvery int `json:"misplace_priority_every,omitempty"`
}

// WithDefaults normalizes workload knobs to their execution defaults.
// The suite layer applies it before keying cells, so omitted and
// explicit-default specs share identities.
func (s Spec) WithDefaults() Spec {
	if s.Rounds <= 0 {
		s.Rounds = DefaultRounds
	}
	if s.Items <= 0 {
		s.Items = DefaultItems
	}
	if s.HogBursts <= 0 {
		s.HogBursts = DefaultHogBursts
	}
	return s
}

// Kernel builds the slave configuration, faults armed.
func (s Spec) Kernel() pcore.Config {
	k := pcore.Config{
		MaxTasks:  s.MaxTasks,
		StackSize: s.StackSize,
		GCEvery:   s.GCEvery,
		Faults: pcore.FaultPlan{
			GCLeakEvery:           s.GCLeakEvery,
			DropResumeEvery:       s.DropResumeEvery,
			MisplacePriorityEvery: s.MisplacePriorityEvery,
		},
	}
	if s.Quantum > 0 {
		k.Quantum = clock.Cycles(s.Quantum)
	}
	return k
}

// NewFactory resolves the spec through the registry into a per-trial
// factory constructor. Every trial gets a fresh factory so workloads
// with shared mutable state stay independent across trials and across
// parallel workers. n sizes task-count-dependent workloads
// (philosophers).
func (s Spec) NewFactory(n int) (func() committee.Factory, error) {
	regMu.RLock()
	w, ok := registry[s.Name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (want %s)", s.Name, NamesHint())
	}
	return w.build(s.WithDefaults(), n), nil
}

// Builder constructs the per-trial factory constructor for a defaulted
// spec. n is the cell's task count.
type Builder func(s Spec, n int) func() committee.Factory

// Option tunes a registration.
type Option func(*entry)

// DataSeeded marks a workload as consuming Spec.Seed as its data seed
// (quicksort's input permutation). Callers that map a shared seed flag
// onto workload specs (the CLI's one-cell-suite path) consult it so
// seed-insensitive workloads are not needlessly re-keyed.
func DataSeeded() Option {
	return func(e *entry) { e.dataSeed = true }
}

type entry struct {
	name     string
	doc      string
	build    Builder
	dataSeed bool
}

var (
	regMu    sync.RWMutex
	registry = map[string]entry{}
)

// Register adds a workload under name. It panics on a duplicate name:
// registration happens in init functions, and two workloads fighting
// over one name would corrupt cell identities.
func Register(name, doc string, b Builder, opts ...Option) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", name))
	}
	e := entry{name: name, doc: doc, build: b}
	for _, opt := range opts {
		opt(&e)
	}
	registry[name] = e
}

// UsesDataSeed reports whether the named workload consumes Spec.Seed
// (registered with DataSeeded). Unknown names report false.
func UsesDataSeed(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name].dataSeed
}

// Names lists the registered workload names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NamesHint renders the registered names as the "(want a|b|c)" hint
// validation errors carry.
func NamesHint() string {
	return strings.Join(Names(), "|")
}

// Doc returns the one-line description of a registered workload.
func Doc(name string) string {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name].doc
}
