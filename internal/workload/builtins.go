// The built-in workloads: the paper's two case studies plus the
// classic concurrency-bug scenarios the later PRs added. Each is one
// Register call over package app — the template for out-of-tree
// scenarios.
package workload

import (
	"repro/internal/app"
	"repro/internal/committee"
)

func init() {
	Register("spin", "idle control-loop tasks (clean; pure scheduler stress)",
		func(s Spec, n int) func() committee.Factory {
			return app.SpinFactory
		})
	Register("quicksort", "case study 1: each task sorts 128 ints in a 512-byte stack (seed)",
		func(s Spec, n int) func() committee.Factory {
			seed := s.Seed
			return func() committee.Factory { return app.QuicksortFactory(seed) }
		}, DataSeeded())
	Register("philosophers", "case study 2: dining philosophers, deadlock-prone fork order (rounds)",
		func(s Spec, n int) func() committee.Factory {
			rounds := s.Rounds
			return func() committee.Factory {
				f, _ := app.Philosophers(max(n, 2), rounds, false)
				return f
			}
		})
	Register("ordered-philosophers", "dining philosophers with a global fork order (deadlock-free control)",
		func(s Spec, n int) func() committee.Factory {
			rounds := s.Rounds
			return func() committee.Factory {
				f, _ := app.Philosophers(max(n, 2), rounds, true)
				return f
			}
		})
	Register("prodcons", "producer/consumer with a lost-wakeup hazard (items)",
		func(s Spec, n int) func() committee.Factory {
			items := s.Items
			return func() committee.Factory { return app.ProducerConsumer(items) }
		})
	Register("inversion", "priority-inversion starvation scenario (hog_bursts)",
		func(s Spec, n int) func() committee.Factory {
			hogBursts := s.HogBursts
			return func() committee.Factory { return app.PriorityInversion(hogBursts) }
		})
}
