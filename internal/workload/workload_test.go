package workload

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/committee"
)

func TestBuiltinsRegistered(t *testing.T) {
	names := Names()
	for _, want := range []string{"spin", "quicksort", "philosophers",
		"ordered-philosophers", "prodcons", "inversion"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin %q not registered (have %v)", want, names)
		}
		if Doc(want) == "" {
			t.Errorf("builtin %q has no doc line", want)
		}
	}
}

func TestUnknownNameErrorCarriesHint(t *testing.T) {
	_, err := Spec{Name: "nosuch"}.NewFactory(1)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	for _, want := range []string{`unknown workload "nosuch"`, "spin", "quicksort"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q misses %q", err, want)
		}
	}
}

func TestRegisteredWorkloadResolvesImmediately(t *testing.T) {
	// The seam: a workload registered by an out-of-tree file (this one)
	// resolves through Spec.NewFactory with no registry-package edits.
	called := 0
	Register("test-custom", "test-only", func(s Spec, n int) func() committee.Factory {
		if s.Rounds != DefaultRounds {
			t.Errorf("builder got an undefaulted spec: %+v", s)
		}
		return func() committee.Factory {
			called++
			return app.SpinFactory()
		}
	})
	nf, err := Spec{Name: "test-custom"}.NewFactory(2)
	if err != nil {
		t.Fatal(err)
	}
	nf()
	nf()
	if called != 2 {
		t.Fatalf("per-trial constructor called %d times, want 2", called)
	}
}

func TestWithDefaultsNormalizesKnobs(t *testing.T) {
	d := Spec{Name: "philosophers"}.WithDefaults()
	if d.Rounds != DefaultRounds || d.Items != DefaultItems || d.HogBursts != DefaultHogBursts {
		t.Fatalf("defaults not applied: %+v", d)
	}
	e := Spec{Name: "philosophers", Rounds: 7}.WithDefaults()
	if e.Rounds != 7 {
		t.Fatalf("explicit knob clobbered: %+v", e)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("spin", "dup", nil)
}
