package replay

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/pattern"
	"repro/internal/pcore"
	"repro/internal/pfa"
)

func gcCrashConfig() core.Config {
	return core.Config{
		RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
		N: 12, S: 20, Op: pattern.OpRoundRobin, Seed: 6,
		Factory: app.QuicksortFactory(11),
		Kernel:  pcore.Config{GCEvery: 4, Faults: pcore.FaultPlan{GCLeakEvery: 2}},
	}
}

func TestRoundTripReproducesCrash(t *testing.T) {
	cfg := gcCrashConfig()
	out, err := core.AdaptiveTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bug == nil || out.Bug.Kind != detector.BugCrash {
		t.Fatalf("original run found %v", out.Bug)
	}

	f := FromOutcome(cfg, out, "quicksort", 11)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Workload != "quicksort" || loaded.BugSummary == "" {
		t.Fatalf("loaded %+v", loaded)
	}

	replayed, err := loaded.Run(app.QuicksortFactory(loaded.WorkloadSeed))
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Bug == nil || replayed.Bug.Kind != detector.BugCrash {
		t.Fatalf("replay found %v", replayed.Bug)
	}
	// Bit-identical reproduction: same fault, same virtual time, same
	// number of commands.
	if replayed.Bug.Fault.Reason != out.Bug.Fault.Reason {
		t.Fatalf("fault %q vs %q", replayed.Bug.Fault.Reason, out.Bug.Fault.Reason)
	}
	if replayed.Bug.At != out.Bug.At {
		t.Fatalf("detection time %d vs %d", replayed.Bug.At, out.Bug.At)
	}
	if replayed.CommandsIssued != out.CommandsIssued {
		t.Fatalf("commands %d vs %d", replayed.CommandsIssued, out.CommandsIssued)
	}
	if replayed.Journal.Dump() != out.Journal.Dump() {
		t.Fatal("journals differ")
	}
}

func TestRoundTripCleanRun(t *testing.T) {
	cfg := core.Config{
		RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
		N: 3, S: 8, Op: pattern.OpSequential, Seed: 2,
		Factory: app.SpinFactory(),
	}
	out, err := core.AdaptiveTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := FromOutcome(cfg, out, "spin", 0)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := loaded.Run(app.SpinFactory())
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Bug != nil {
		t.Fatalf("clean replay found %v", replayed.Bug)
	}
	if replayed.Duration != out.Duration {
		t.Fatalf("duration %d vs %d", replayed.Duration, out.Duration)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":99,"entries":[{"Task":0,"Symbol":"TC","Seq":0}]}`)); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"entries":[]}`)); err == nil {
		t.Fatal("empty schedule accepted")
	}
}

func TestFileJSONShape(t *testing.T) {
	cfg := gcCrashConfig()
	out, err := core.AdaptiveTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := FromOutcome(cfg, out, "quicksort", 11)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{`"version": 1`, `"workload": "quicksort"`, `"op": "roundrobin"`, `"gc_leak"`} {
		if !strings.Contains(s, frag) {
			// FaultPlan fields marshal with Go field names; check loosely.
			if frag == `"gc_leak"` {
				if !strings.Contains(s, "GCLeakEvery") {
					t.Errorf("file JSON missing fault plan: %s", s[:200])
				}
				continue
			}
			t.Errorf("file JSON missing %q", frag)
		}
	}
}
