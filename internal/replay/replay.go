// Package replay serializes a failing pTest run into a self-contained
// reproduction file and re-executes it. The paper's bug detector "dumps
// the related information to help users reproduce the bugs"; in the
// deterministic co-simulation that information is the exact merged
// command schedule plus the platform configuration, so a replay is
// bit-identical to the original run.
package replay

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/clock"
	"repro/internal/committee"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/pcore"
	"repro/internal/pfa"
)

// Version is the reproduction file format version.
const Version = 1

// KernelParams is the serializable subset of pcore.Config.
type KernelParams struct {
	MaxTasks  int             `json:"max_tasks,omitempty"`
	StackSize int             `json:"stack_size,omitempty"`
	GCEvery   int             `json:"gc_every,omitempty"`
	Quantum   uint64          `json:"quantum,omitempty"`
	Faults    pcore.FaultPlan `json:"faults"`
}

// File is one reproduction record.
type File struct {
	Version    int              `json:"version"`
	RE         string           `json:"re"`
	PD         pfa.Distribution `json:"pd,omitempty"`
	Seed       uint64           `json:"seed"`
	CommandGap int              `json:"command_gap,omitempty"`
	Kernel     KernelParams     `json:"kernel"`

	// Workload names the slave factory; the runner resolves it through
	// its registry (function values cannot be serialized).
	Workload     string `json:"workload"`
	WorkloadSeed uint64 `json:"workload_seed,omitempty"`

	// Entries is the exact merged command schedule that provoked the bug.
	Entries []pattern.Entry `json:"entries"`
	Sources int             `json:"sources"`
	Op      string          `json:"op"`

	// BugSummary records what the original run detected (informational).
	BugSummary string `json:"bug_summary,omitempty"`
}

// FromOutcome builds a reproduction file from a finished run.
func FromOutcome(cfg core.Config, out *core.Outcome, workload string, workloadSeed uint64) *File {
	f := &File{
		Version:    Version,
		RE:         cfg.RE,
		PD:         cfg.PD,
		Seed:       cfg.Seed,
		CommandGap: cfg.CommandGap,
		Kernel: KernelParams{
			MaxTasks:  cfg.Kernel.MaxTasks,
			StackSize: cfg.Kernel.StackSize,
			GCEvery:   cfg.Kernel.GCEvery,
			Quantum:   uint64(cfg.Kernel.Quantum),
			Faults:    cfg.Kernel.Faults,
		},
		Workload:     workload,
		WorkloadSeed: workloadSeed,
		Entries:      out.Merged.Entries,
		Sources:      out.Merged.Sources,
		Op:           out.Merged.Op.String(),
	}
	if out.Bug != nil {
		f.BugSummary = out.Bug.String()
	}
	return f
}

// Save writes the file as indented JSON.
func (f *File) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Load reads a reproduction file.
func Load(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("replay: unsupported version %d", f.Version)
	}
	if len(f.Entries) == 0 {
		return nil, fmt.Errorf("replay: empty schedule")
	}
	return &f, nil
}

// Run re-executes the recorded schedule with the given factory (resolved
// by the caller from File.Workload). The result should reproduce the
// recorded bug exactly.
func (f *File) Run(factory committee.Factory) (*core.Outcome, error) {
	op, err := pattern.ParseOp(f.Op)
	if err != nil {
		op = pattern.OpSequential
	}
	merged := pattern.Merged{
		Entries: append([]pattern.Entry{}, f.Entries...),
		Op:      op,
		Sources: f.Sources,
	}
	cfg := core.Config{
		RE:         f.RE,
		PD:         f.PD,
		Seed:       f.Seed,
		CommandGap: f.CommandGap,
		Kernel: pcore.Config{
			MaxTasks:  f.Kernel.MaxTasks,
			StackSize: f.Kernel.StackSize,
			GCEvery:   f.Kernel.GCEvery,
			Quantum:   clock.Cycles(f.Kernel.Quantum),
			Faults:    f.Kernel.Faults,
		},
		Factory: factory,
	}
	return core.RunMerged(cfg, merged)
}
