package pcore

import (
	"strings"
	"testing"
)

func newK(t *testing.T, cfg Config) *Kernel {
	t.Helper()
	k := New(cfg)
	t.Cleanup(k.Shutdown)
	return k
}

func TestCreateAndRunToCompletion(t *testing.T) {
	k := newK(t, Config{})
	ran := false
	id, err := k.CreateTask("worker", 5, func(c *Ctx) {
		c.Compute(100)
		ran = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if id == InvalidTask {
		t.Fatal("invalid id")
	}
	k.RunUntilIdle(100)
	if !ran {
		t.Fatal("task body did not run")
	}
	if _, ok := k.TaskInfo(id); ok {
		t.Fatal("task slot still live after completion")
	}
}

func TestPriorityScheduling(t *testing.T) {
	k := newK(t, Config{})
	var order []string
	mk := func(name string) func(*Ctx) {
		return func(c *Ctx) { order = append(order, name) }
	}
	// Created low-priority first; high priority must still run first.
	if _, err := k.CreateTask("low", 9, mk("low")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateTask("high", 1, mk("high")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateTask("mid", 5, mk("mid")); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle(100)
	if strings.Join(order, ",") != "high,mid,low" {
		t.Fatalf("order %v", order)
	}
}

func TestYieldRoundRobin(t *testing.T) {
	k := newK(t, Config{})
	var order []string
	mk := func(name string) func(*Ctx) {
		return func(c *Ctx) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				c.Yield()
			}
		}
	}
	_, _ = k.CreateTask("a", 5, mk("a"))
	_, _ = k.CreateTask("b", 5, mk("b"))
	k.RunUntilIdle(100)
	want := "a,b,a,b,a,b"
	if strings.Join(order, ",") != want {
		t.Fatalf("order %v, want %s", order, want)
	}
}

func TestComputeKeepsRunningUntilQuantum(t *testing.T) {
	k := newK(t, Config{Quantum: 100})
	var order []string
	mk := func(name string, bursts int) func(*Ctx) {
		return func(c *Ctx) {
			for i := 0; i < bursts; i++ {
				order = append(order, name)
				c.Compute(40) // below quantum: keeps the processor
			}
		}
	}
	_, _ = k.CreateTask("a", 5, mk("a", 4))
	_, _ = k.CreateTask("b", 5, mk("b", 4))
	k.RunUntilIdle(100)
	// a computes 40+40 = 80 < 100, third burst crosses the quantum at 120
	// → rotation. Expect runs of a then b, not strict alternation.
	joined := strings.Join(order, ",")
	if strings.HasPrefix(joined, "a,b") {
		t.Fatalf("compute did not keep processor: %s", joined)
	}
	if !strings.Contains(joined, "b") {
		t.Fatalf("b never ran: %s", joined)
	}
}

func TestPreemptionByResume(t *testing.T) {
	k := newK(t, Config{})
	var order []string
	hiID, _ := k.CreateTask("hi", 1, func(c *Ctx) {
		order = append(order, "hi")
	})
	if err := k.SuspendTask(hiID); err != nil {
		t.Fatal(err)
	}
	_, _ = k.CreateTask("lo", 9, func(c *Ctx) {
		order = append(order, "lo1")
		c.Yield()
		order = append(order, "lo2")
	})
	// Let lo run one step, then resume hi: hi must preempt lo's remainder.
	if _, ran := k.Step(); !ran {
		t.Fatal("no step")
	}
	if err := k.ResumeTask(hiID); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle(100)
	if strings.Join(order, ",") != "lo1,hi,lo2" {
		t.Fatalf("order %v", order)
	}
}

func TestSuspendResumeSemantics(t *testing.T) {
	k := newK(t, Config{})
	id, _ := k.CreateTask("x", 5, func(c *Ctx) {
		for {
			c.Yield()
		}
	})
	// Resume of a ready task is illegal (paper: resume only when suspended).
	if err := k.ResumeTask(id); err == nil {
		t.Fatal("resume of ready task accepted")
	}
	if err := k.SuspendTask(id); err != nil {
		t.Fatal(err)
	}
	info, _ := k.TaskInfo(id)
	if info.State != StateSuspended {
		t.Fatalf("state %v", info.State)
	}
	// Double suspend is illegal.
	if err := k.SuspendTask(id); err == nil {
		t.Fatal("double suspend accepted")
	}
	// Suspended task must not run.
	if _, ran := k.Step(); ran {
		t.Fatal("suspended task ran")
	}
	if err := k.ResumeTask(id); err != nil {
		t.Fatal(err)
	}
	if _, ran := k.Step(); !ran {
		t.Fatal("resumed task did not run")
	}
}

func TestServiceErrorsOnBadIDs(t *testing.T) {
	k := newK(t, Config{})
	for _, err := range []error{
		k.DeleteTask(0),
		k.DeleteTask(99),
		k.SuspendTask(3),
		k.ResumeTask(3),
		k.ChangePriority(3, 1),
		k.TerminateTask(3),
	} {
		if err == nil {
			t.Fatal("bad id accepted")
		}
		if _, ok := err.(*ServiceError); !ok {
			t.Fatalf("got %T: %v", err, err)
		}
	}
}

func TestChangePriorityRepositionsReadyTask(t *testing.T) {
	k := newK(t, Config{})
	var order []string
	a, _ := k.CreateTask("a", 5, func(c *Ctx) { order = append(order, "a") })
	_, _ = k.CreateTask("b", 4, func(c *Ctx) { order = append(order, "b") })
	if err := k.ChangePriority(a, 2); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle(100)
	if strings.Join(order, ",") != "a,b" {
		t.Fatalf("order %v", order)
	}
}

func TestChangePriorityRange(t *testing.T) {
	k := newK(t, Config{})
	id, _ := k.CreateTask("x", 5, func(c *Ctx) { c.Yield() })
	if err := k.ChangePriority(id, NumPriorities); err == nil {
		t.Fatal("out-of-range priority accepted")
	}
}

func TestTerminateTaskTY(t *testing.T) {
	k := newK(t, Config{})
	hits := 0
	id, _ := k.CreateTask("loop", 5, func(c *Ctx) {
		for {
			hits++
			c.Yield()
		}
	})
	k.Step()
	k.Step()
	if err := k.TerminateTask(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := k.TaskInfo(id); ok {
		t.Fatal("task alive after TY")
	}
	before := hits
	k.RunUntilIdle(10)
	if hits != before {
		t.Fatal("terminated task kept running")
	}
}

func TestDeleteInEachState(t *testing.T) {
	k := newK(t, Config{})
	// Ready task.
	a, _ := k.CreateTask("ready", 5, func(c *Ctx) {
		for {
			c.Yield()
		}
	})
	if err := k.DeleteTask(a); err != nil {
		t.Fatal(err)
	}
	// Suspended task.
	b, _ := k.CreateTask("susp", 5, func(c *Ctx) {
		for {
			c.Yield()
		}
	})
	_ = k.SuspendTask(b)
	if err := k.DeleteTask(b); err != nil {
		t.Fatal(err)
	}
	// Blocked task.
	sem := k.NewSem("s", 0)
	c, _ := k.CreateTask("blocked", 5, func(ctx *Ctx) {
		ctx.SemWait(sem)
	})
	k.Step() // run until it blocks
	info, _ := k.TaskInfo(c)
	if info.State != StateBlocked {
		t.Fatalf("state %v, want blocked", info.State)
	}
	if err := k.DeleteTask(c); err != nil {
		t.Fatal(err)
	}
	if sem.Waiters() != 0 {
		t.Fatal("deleted task still in wait queue")
	}
	// Double delete.
	if err := k.DeleteTask(c); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestSixteenTaskLimit(t *testing.T) {
	k := newK(t, Config{})
	body := func(c *Ctx) {
		for {
			c.Yield()
		}
	}
	for i := 0; i < 16; i++ {
		if _, err := k.CreateTask("t", Priority(i%NumPriorities), body); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	if _, err := k.CreateTask("overflow", 5, body); err == nil {
		t.Fatal("17th task accepted")
	}
	if k.Crashed() {
		t.Fatal("slot exhaustion crashed the kernel")
	}
}

func TestSlotReuseAfterDelete(t *testing.T) {
	k := newK(t, Config{})
	body := func(c *Ctx) {
		for {
			c.Yield()
		}
	}
	// Healthy kernel sustains far more create/delete cycles than slots.
	for i := 0; i < 200; i++ {
		id, err := k.CreateTask("churn", 5, body)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := k.DeleteTask(id); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if k.Crashed() {
		t.Fatalf("healthy kernel crashed: %v", k.Fault())
	}
}

func TestSemWaitSignal(t *testing.T) {
	k := newK(t, Config{})
	sem := k.NewSem("s", 0)
	var order []string
	_, _ = k.CreateTask("waiter", 3, func(c *Ctx) {
		c.SemWait(sem)
		order = append(order, "acquired")
	})
	_, _ = k.CreateTask("signaler", 5, func(c *Ctx) {
		order = append(order, "signaling")
		c.SemSignal(sem)
	})
	k.RunUntilIdle(100)
	if strings.Join(order, ",") != "signaling,acquired" {
		t.Fatalf("order %v", order)
	}
}

func TestSemInitialCount(t *testing.T) {
	k := newK(t, Config{})
	sem := k.NewSem("s", 2)
	got := 0
	body := func(c *Ctx) {
		c.SemWait(sem)
		got++
	}
	_, _ = k.CreateTask("a", 5, body)
	_, _ = k.CreateTask("b", 5, body)
	_, _ = k.CreateTask("c", 5, body)
	k.RunUntilIdle(100)
	if got != 2 {
		t.Fatalf("acquired %d, want 2 (third must stay blocked)", got)
	}
}

func TestSemPriorityWakeOrder(t *testing.T) {
	k := newK(t, Config{})
	sem := k.NewSem("s", 0)
	var woke []string
	mk := func(name string) func(*Ctx) {
		return func(c *Ctx) {
			c.SemWait(sem)
			woke = append(woke, name)
		}
	}
	_, _ = k.CreateTask("low", 9, mk("low"))
	_, _ = k.CreateTask("high", 1, mk("high"))
	k.RunUntilIdle(100) // both block
	_, _ = k.CreateTask("sig", 5, func(c *Ctx) {
		c.SemSignal(sem)
		c.SemSignal(sem)
	})
	k.RunUntilIdle(100)
	if strings.Join(woke, ",") != "high,low" {
		t.Fatalf("wake order %v", woke)
	}
}

func TestSemNoPhantomUnitAfterHandoff(t *testing.T) {
	// Regression: a task woken by direct handoff must not retain a
	// "grant" that lets a later SemWait on the same semaphore skip
	// blocking. The second wait below must block (count is 0 again).
	k := newK(t, Config{})
	sem := k.NewSem("s", 0)
	acquired := 0
	id, _ := k.CreateTask("waiter", 5, func(c *Ctx) {
		c.SemWait(sem) // blocks, gets handoff
		acquired++
		c.SemWait(sem) // must block again
		acquired++
	})
	_, _ = k.CreateTask("sig", 5, func(c *Ctx) {
		c.SemSignal(sem)
	})
	k.RunUntilIdle(200)
	if acquired != 1 {
		t.Fatalf("acquired %d units from 1 signal", acquired)
	}
	info, _ := k.TaskInfo(id)
	if info.State != StateBlocked {
		t.Fatalf("waiter state %v, want blocked on second wait", info.State)
	}
}

func TestMutexOwnershipAndTransfer(t *testing.T) {
	k := newK(t, Config{})
	m := k.NewMutex("m")
	var order []string
	_, _ = k.CreateTask("a", 5, func(c *Ctx) {
		c.Lock(m)
		order = append(order, "a-locked")
		c.Yield()
		c.Unlock(m)
		order = append(order, "a-unlocked")
	})
	bID, _ := k.CreateTask("b", 5, func(c *Ctx) {
		c.Lock(m)
		order = append(order, "b-locked")
		c.Unlock(m)
	})
	k.Step() // a locks
	if m.Owner() == InvalidTask {
		t.Fatal("mutex not owned")
	}
	k.RunUntilIdle(100)
	joined := strings.Join(order, ",")
	if joined != "a-locked,a-unlocked,b-locked" && joined != "a-locked,b-locked,a-unlocked" {
		// Ownership transfer wakes b only after a unlocks; a-unlocked is
		// appended after the unlock call returns, so the first form is
		// expected; accept both orderings of the trailing entries only if
		// b locked after a unlocked semantically.
		t.Fatalf("order %v", order)
	}
	if m.Owner() != InvalidTask {
		t.Fatalf("mutex still owned by %d", m.Owner())
	}
	_ = bID
}

func TestRecursiveLockCrashesKernel(t *testing.T) {
	k := newK(t, Config{})
	m := k.NewMutex("m")
	_, _ = k.CreateTask("rec", 5, func(c *Ctx) {
		c.Lock(m)
		c.Lock(m)
	})
	k.RunUntilIdle(100)
	f := k.Fault()
	if f == nil || f.Reason != FaultAssert {
		t.Fatalf("fault %v", f)
	}
}

func TestBadUnlockCrashesKernel(t *testing.T) {
	k := newK(t, Config{})
	m := k.NewMutex("m")
	_, _ = k.CreateTask("bad", 5, func(c *Ctx) {
		c.Unlock(m)
	})
	k.RunUntilIdle(100)
	if k.Fault() == nil || k.Fault().Reason != FaultAssert {
		t.Fatalf("fault %v", k.Fault())
	}
}

func TestSuspendBlockedTaskRetriesWait(t *testing.T) {
	k := newK(t, Config{})
	m := k.NewMutex("m")
	acquired := false
	holder, _ := k.CreateTask("holder", 5, func(c *Ctx) {
		c.Lock(m)
		for i := 0; i < 3; i++ {
			c.Yield()
		}
		c.Unlock(m)
		for {
			c.Yield()
		}
	})
	waiter, _ := k.CreateTask("waiter", 5, func(c *Ctx) {
		c.Lock(m)
		acquired = true
		c.Unlock(m)
	})
	// Run until the waiter blocks on the mutex.
	for i := 0; i < 3; i++ {
		k.Step()
	}
	info, _ := k.TaskInfo(waiter)
	if info.State != StateBlocked {
		t.Fatalf("waiter state %v", info.State)
	}
	// Suspend the blocked waiter: it leaves the wait queue.
	if err := k.SuspendTask(waiter); err != nil {
		t.Fatal(err)
	}
	if m.Waiters() != 0 {
		t.Fatal("suspended task still queued on mutex")
	}
	// Resume: the waiter retries, eventually acquires after holder unlocks.
	if err := k.ResumeTask(waiter); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle(200)
	if !acquired {
		t.Fatal("waiter never reacquired after suspend/resume")
	}
	_ = holder
}

func TestStackOverflowCrashes(t *testing.T) {
	k := newK(t, Config{StackSize: 512})
	_, _ = k.CreateTask("deep", 5, func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.StackPush(64)
		}
	})
	k.RunUntilIdle(1000)
	f := k.Fault()
	if f == nil || f.Reason != FaultStackOverflow {
		t.Fatalf("fault %v", f)
	}
}

func TestStackBalancedNoCrash(t *testing.T) {
	k := newK(t, Config{StackSize: 512})
	_, _ = k.CreateTask("ok", 5, func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.StackPush(256)
			c.StackPop(256)
		}
	})
	k.RunUntilIdle(10000)
	if k.Crashed() {
		t.Fatalf("balanced stack crashed: %v", k.Fault())
	}
}

func TestStackGuardOffCorruptsNeighbor(t *testing.T) {
	k := newK(t, Config{StackSize: 512, Faults: FaultPlan{StackGuardOff: true}})
	victim, _ := k.CreateTask("victim", 6, func(c *Ctx) {
		for {
			c.Yield()
		}
	})
	_, _ = k.CreateTask("overflower", 5, func(c *Ctx) {
		for i := 0; i < 20; i++ {
			c.StackPush(64)
		}
	})
	k.RunUntilIdle(1000)
	if k.Crashed() {
		t.Fatalf("unguarded overflow crashed immediately: %v", k.Fault())
	}
	// The next service touching the corrupted neighbour crashes.
	err := k.SuspendTask(victim)
	if err == nil || k.Fault() == nil || k.Fault().Reason != FaultAssert {
		t.Fatalf("corruption not detected: err=%v fault=%v", err, k.Fault())
	}
}

func TestGCLeakFaultCrashesUnderChurn(t *testing.T) {
	k := newK(t, Config{GCEvery: 4, Faults: FaultPlan{GCLeakEvery: 2}})
	body := func(c *Ctx) { c.Compute(10) }
	var crashed bool
	for i := 0; i < 500; i++ {
		id, err := k.CreateTask("churn", 5, body)
		if err != nil {
			crashed = true
			break
		}
		k.RunUntilIdle(10)
		_ = id
	}
	if !crashed && !k.Crashed() {
		t.Fatal("GC leak fault never crashed the kernel")
	}
	f := k.Fault()
	if f.Reason != FaultPoolExhausted && f.Reason != FaultGCCorruption {
		t.Fatalf("fault reason %q", f.Reason)
	}
	tcb, _ := k.Pools()
	if tcb.Leaked() == 0 {
		t.Fatal("no blocks leaked")
	}
}

func TestGCCorruptAfterLeaksThreshold(t *testing.T) {
	k := newK(t, Config{GCEvery: 2, Faults: FaultPlan{GCLeakEvery: 1, GCCorruptAfterLeaks: 4}})
	body := func(c *Ctx) { c.Compute(5) }
	for i := 0; i < 100 && !k.Crashed(); i++ {
		_, _ = k.CreateTask("churn", 5, body)
		k.RunUntilIdle(10)
	}
	f := k.Fault()
	if f == nil || f.Reason != FaultGCCorruption {
		t.Fatalf("fault %v", f)
	}
}

func TestHealthyGCSurvivesChurn(t *testing.T) {
	k := newK(t, Config{GCEvery: 4})
	body := func(c *Ctx) { c.Compute(10) }
	for i := 0; i < 500; i++ {
		if _, err := k.CreateTask("churn", 5, body); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		k.RunUntilIdle(10)
	}
	if k.Crashed() {
		t.Fatalf("healthy kernel crashed: %v", k.Fault())
	}
}

func TestDropResumeEveryLostWakeup(t *testing.T) {
	k := newK(t, Config{Faults: FaultPlan{DropResumeEvery: 2}})
	a, _ := k.CreateTask("a", 5, func(c *Ctx) {
		for {
			c.Yield()
		}
	})
	_ = k.SuspendTask(a)
	if err := k.ResumeTask(a); err != nil { // resume #1: honoured
		t.Fatal(err)
	}
	info, _ := k.TaskInfo(a)
	if info.State != StateReady {
		t.Fatalf("state %v after honoured resume", info.State)
	}
	_ = k.SuspendTask(a)
	if err := k.ResumeTask(a); err != nil { // resume #2: dropped silently
		t.Fatal(err)
	}
	info, _ = k.TaskInfo(a)
	if info.State != StateSuspended {
		t.Fatalf("state %v after dropped resume, want suspended", info.State)
	}
}

func TestMisplacePriorityFault(t *testing.T) {
	k := newK(t, Config{Faults: FaultPlan{MisplacePriorityEvery: 2}})
	a, _ := k.CreateTask("a", 5, func(c *Ctx) {
		for {
			c.Yield()
		}
	})
	_ = k.ChangePriority(a, 3) // honoured
	info, _ := k.TaskInfo(a)
	if info.Prio != 3 {
		t.Fatalf("prio %d", info.Prio)
	}
	_ = k.ChangePriority(a, 2) // misapplied to lowest
	info, _ = k.TaskInfo(a)
	if info.Prio != NumPriorities-1 {
		t.Fatalf("prio %d, want %d", info.Prio, NumPriorities-1)
	}
}

func TestWaitForGraphDeadlockCycle(t *testing.T) {
	k := newK(t, Config{})
	m1 := k.NewMutex("m1")
	m2 := k.NewMutex("m2")
	a, _ := k.CreateTask("a", 5, func(c *Ctx) {
		c.Lock(m1)
		c.Yield()
		c.Lock(m2)
		c.Unlock(m2)
		c.Unlock(m1)
	})
	b, _ := k.CreateTask("b", 5, func(c *Ctx) {
		c.Lock(m2)
		c.Yield()
		c.Lock(m1)
		c.Unlock(m1)
		c.Unlock(m2)
	})
	k.RunUntilIdle(100)
	if k.Crashed() {
		t.Fatalf("crashed: %v", k.Fault())
	}
	g := k.WaitForGraph()
	if len(g[a]) != 1 || g[a][0] != b {
		t.Fatalf("graph %v", g)
	}
	if len(g[b]) != 1 || g[b][0] != a {
		t.Fatalf("graph %v", g)
	}
	// Both blocked, nothing ready: the kernel is idle (hung).
	if !k.Idle() {
		t.Fatal("deadlocked kernel not idle")
	}
}

func TestTaskPanicContained(t *testing.T) {
	k := newK(t, Config{})
	_, _ = k.CreateTask("boom", 5, func(c *Ctx) {
		panic("application bug")
	})
	k.RunUntilIdle(10)
	f := k.Fault()
	if f == nil || f.Reason != FaultAssert || !strings.Contains(f.Detail, "application bug") {
		t.Fatalf("fault %v", f)
	}
}

func TestCtxExit(t *testing.T) {
	k := newK(t, Config{})
	after := false
	id, _ := k.CreateTask("x", 5, func(c *Ctx) {
		c.Exit()
		after = true // must be unreachable
	})
	k.RunUntilIdle(10)
	if after {
		t.Fatal("code after Exit ran")
	}
	if _, ok := k.TaskInfo(id); ok {
		t.Fatal("task alive after Exit")
	}
	if k.Crashed() {
		t.Fatalf("Exit crashed kernel: %v", k.Fault())
	}
}

func TestProgressCounter(t *testing.T) {
	k := newK(t, Config{})
	id, _ := k.CreateTask("p", 5, func(c *Ctx) {
		for i := 0; i < 5; i++ {
			c.Progress()
			c.Yield()
		}
	})
	k.Step()
	k.Step()
	info, _ := k.TaskInfo(id)
	if info.Progress == 0 {
		t.Fatal("no progress recorded")
	}
}

func TestEventsEmitted(t *testing.T) {
	k := newK(t, Config{})
	var kinds []EventKind
	k.OnEvent(func(e Event) { kinds = append(kinds, e.Kind) })
	id, _ := k.CreateTask("e", 5, func(c *Ctx) {
		c.Progress()
	})
	k.RunUntilIdle(10)
	_ = id
	want := map[EventKind]bool{EvService: false, EvDispatch: false, EvProgress: false, EvExit: false}
	for _, kd := range kinds {
		if _, ok := want[kd]; ok {
			want[kd] = true
		}
	}
	for kd, seen := range want {
		if !seen {
			t.Errorf("event kind %v never emitted", kd)
		}
	}
}

func TestServiceStatsAndCosts(t *testing.T) {
	k := newK(t, Config{})
	id, _ := k.CreateTask("s", 5, func(c *Ctx) {
		for {
			c.Yield()
		}
	})
	_ = k.SuspendTask(id)
	_ = k.ResumeTask(id)
	_ = k.ChangePriority(id, 6)
	_ = k.DeleteTask(id)
	calls, cycles := k.ServiceStats()
	for _, svc := range []Service{SvcTaskCreate, SvcTaskSuspend, SvcTaskResume, SvcTaskChanprio, SvcTaskDelete} {
		if calls[svc] != 1 {
			t.Errorf("%s calls %d", svc, calls[svc])
		}
		if cycles[svc] == 0 {
			t.Errorf("%s cycles 0", svc)
		}
	}
}

func TestCrashedKernelRejectsEverything(t *testing.T) {
	k := newK(t, Config{})
	_, _ = k.CreateTask("boom", 5, func(c *Ctx) { panic("x") })
	k.RunUntilIdle(10)
	if !k.Crashed() {
		t.Fatal("not crashed")
	}
	if _, err := k.CreateTask("y", 5, func(c *Ctx) {}); err == nil {
		t.Fatal("crashed kernel accepted create")
	}
	if _, ran := k.Step(); ran {
		t.Fatal("crashed kernel stepped")
	}
}

func TestDeterministicEventStream(t *testing.T) {
	run := func() []string {
		k := New(Config{})
		defer k.Shutdown()
		var log []string
		k.OnEvent(func(e Event) {
			log = append(log, e.Kind.String()+":"+string(e.Service))
		})
		sem := k.NewSem("s", 0)
		_, _ = k.CreateTask("a", 3, func(c *Ctx) {
			c.Compute(50)
			c.SemSignal(sem)
			c.Compute(20)
		})
		_, _ = k.CreateTask("b", 5, func(c *Ctx) {
			c.SemWait(sem)
			c.Progress()
		})
		id, _ := k.CreateTask("c", 7, func(c *Ctx) {
			for {
				c.Yield()
			}
		})
		_ = k.SuspendTask(id)
		_ = k.ResumeTask(id)
		k.RunUntilIdle(50)
		return log
	}
	a := run()
	b := run()
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Fatalf("nondeterministic event streams:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty event stream")
	}
}

func TestSnapshotFields(t *testing.T) {
	k := newK(t, Config{})
	sem := k.NewSem("gate", 0)
	_, _ = k.CreateTask("w", 5, func(c *Ctx) { c.SemWait(sem) })
	k.Step()
	s := k.Snapshot()
	if len(s.Tasks) != 1 {
		t.Fatalf("tasks %d", len(s.Tasks))
	}
	if s.Tasks[0].WaitingOn != "sem:gate" {
		t.Fatalf("waitingOn %q", s.Tasks[0].WaitingOn)
	}
	if s.TCBFree != 15 {
		t.Fatalf("tcb free %d", s.TCBFree)
	}
}

func TestChangePriorityOnBlockedAndSuspended(t *testing.T) {
	k := newK(t, Config{})
	sem := k.NewSem("s", 0)
	blocked, _ := k.CreateTask("blocked", 5, func(c *Ctx) { c.SemWait(sem) })
	susp, _ := k.CreateTask("susp", 5, func(c *Ctx) {
		for {
			c.Yield()
		}
	})
	k.Step() // blocked task blocks
	_ = k.SuspendTask(susp)
	if err := k.ChangePriority(blocked, 3); err != nil {
		t.Fatal(err)
	}
	if err := k.ChangePriority(susp, 2); err != nil {
		t.Fatal(err)
	}
	ib, _ := k.TaskInfo(blocked)
	is, _ := k.TaskInfo(susp)
	if ib.Prio != 3 || is.Prio != 2 {
		t.Fatalf("prios %d %d", ib.Prio, is.Prio)
	}
	if ib.State != StateBlocked || is.State != StateSuspended {
		t.Fatalf("states %v %v changed by TCH", ib.State, is.State)
	}
	// Priority change of a blocked task reorders its wake position.
	second, _ := k.CreateTask("second", 1, func(c *Ctx) { c.SemWait(sem) })
	k.RunUntilIdle(10)
	_, _ = k.CreateTask("sig", 6, func(c *Ctx) { c.SemSignal(sem) })
	k.RunUntilIdle(10)
	// second (prio 1) outranks blocked (prio 3): it gets the unit.
	i2, _ := k.TaskInfo(second)
	ib, _ = k.TaskInfo(blocked)
	if i2.State == StateBlocked && ib.State != StateBlocked {
		t.Fatalf("wake order ignored priority: second=%v blocked=%v", i2.State, ib.State)
	}
}

func TestTYOnSuspendedAndBlocked(t *testing.T) {
	k := newK(t, Config{})
	sem := k.NewSem("s", 0)
	a, _ := k.CreateTask("a", 5, func(c *Ctx) { c.SemWait(sem) })
	b, _ := k.CreateTask("b", 5, func(c *Ctx) {
		for {
			c.Yield()
		}
	})
	k.Step()
	_ = k.SuspendTask(b)
	if err := k.TerminateTask(a); err != nil {
		t.Fatal(err)
	}
	if err := k.TerminateTask(b); err != nil {
		t.Fatal(err)
	}
	if sem.Waiters() != 0 {
		t.Fatal("terminated task left in sem queue")
	}
	if len(k.LiveTasks()) != 0 {
		t.Fatal("tasks alive after TY")
	}
}

func TestNoiseHookForcesRotation(t *testing.T) {
	// With Noise always-true, two equal-priority compute tasks alternate
	// at every continuation point instead of holding the processor.
	var order []string
	k := New(Config{Quantum: 1 << 30, Noise: func() bool { return true }})
	defer k.Shutdown()
	mk := func(name string) func(*Ctx) {
		return func(c *Ctx) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				c.Compute(10)
			}
		}
	}
	_, _ = k.CreateTask("a", 5, mk("a"))
	_, _ = k.CreateTask("b", 5, mk("b"))
	k.RunUntilIdle(100)
	if strings.Join(order, ",") != "a,b,a,b,a,b" {
		t.Fatalf("noise did not rotate: %v", order)
	}
}

func TestNoiseOffKeepsProcessor(t *testing.T) {
	var order []string
	k := newK(t, Config{Quantum: 1 << 30})
	mk := func(name string) func(*Ctx) {
		return func(c *Ctx) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				c.Compute(10)
			}
		}
	}
	_, _ = k.CreateTask("a", 5, mk("a"))
	_, _ = k.CreateTask("b", 5, mk("b"))
	k.RunUntilIdle(100)
	if strings.Join(order, ",") != "a,a,a,b,b,b" {
		t.Fatalf("unexpected rotation without noise: %v", order)
	}
}

func TestTableIMetadata(t *testing.T) {
	if len(TableIServices()) != 6 {
		t.Fatal("Table I has six services")
	}
	for _, s := range TableIServices() {
		if ServiceDescription(s) == "" {
			t.Errorf("no description for %s", s)
		}
	}
	if ServiceDescription(Service("nope")) != "" {
		t.Error("description for unknown service")
	}
}

func TestPoolInvariants(t *testing.T) {
	p := NewPool("t", 4)
	if p.Free() != 4 || p.InUse() != 0 || p.Garbage() != 0 {
		t.Fatal("fresh pool wrong")
	}
	b1, ok := p.Alloc()
	if !ok {
		t.Fatal("alloc failed")
	}
	if err := p.Release(b1); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(b1); err == nil {
		t.Fatal("double release accepted")
	}
	if p.Garbage() != 1 {
		t.Fatalf("garbage %d", p.Garbage())
	}
	r, l := p.Collect(0)
	if r != 1 || l != 0 || p.Free() != 4 {
		t.Fatalf("collect %d %d free %d", r, l, p.Free())
	}
}

func TestPoolLeakAccounting(t *testing.T) {
	p := NewPool("t", 4)
	b, _ := p.Alloc()
	_ = p.Release(b)
	r, l := p.Collect(1) // every pass leaks
	if r != 0 || l != 1 || p.Leaked() != 1 {
		t.Fatalf("collect %d %d leaked %d", r, l, p.Leaked())
	}
	if p.Free() != 3 {
		t.Fatalf("free %d, want 3 (one block gone)", p.Free())
	}
}

func TestStateStringAndEventKindString(t *testing.T) {
	states := []State{StateFree, StateReady, StateRunning, StateSuspended,
		StateBlocked, StateTerminated, State(200)}
	for _, s := range states {
		if s.String() == "" {
			t.Errorf("empty string for %d", s)
		}
	}
	for kd := EvService; kd <= EvGC+1; kd++ {
		if kd.String() == "" {
			t.Errorf("empty string for kind %d", kd)
		}
	}
}
