package pcore

// MsgQueue is a bounded FIFO message queue between tasks — pCore's
// intra-core IPC primitive. Senders block when the queue is full,
// receivers when it is empty; wakeups follow the same priority-FIFO
// discipline as semaphores, with direct handoff so a woken task's
// operation is already complete when it runs.
type MsgQueue struct {
	name string
	buf  []uint32
	cap  int

	sendQ waitQueue // tasks blocked sending (queue full)
	recvQ waitQueue // tasks blocked receiving (queue empty)
}

// NewQueue creates a message queue with the given capacity (minimum 1:
// pCore does not implement rendezvous queues).
func NewQueue(name string, capacity int) *MsgQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &MsgQueue{name: name, cap: capacity}
}

// NewQueue creates a message queue (kernel method for API symmetry).
func (k *Kernel) NewQueue(name string, capacity int) *MsgQueue {
	return NewQueue(name, capacity)
}

// Name returns the queue name.
func (q *MsgQueue) Name() string { return q.name }

// Len returns the number of buffered messages.
func (q *MsgQueue) Len() int { return len(q.buf) }

// Cap returns the queue capacity.
func (q *MsgQueue) Cap() int { return q.cap }

// SendWaiters returns the number of blocked senders.
func (q *MsgQueue) SendWaiters() int { return q.sendQ.len() }

// RecvWaiters returns the number of blocked receivers.
func (q *MsgQueue) RecvWaiters() int { return q.recvQ.len() }

// handleSend processes a send request inside the kernel; it returns true
// when the task completed the operation and should continue, false when
// it blocked. Wakeups are direct handoffs: the woken counterparty's
// pending operation is already complete (its wake status stays nil), so
// no per-task grant state is needed.
func (k *Kernel) handleSend(t *Task, q *MsgQueue, msg uint32) bool {
	if w := q.recvQ.pop(); w != nil {
		// Direct handoff to the longest-waiting best-priority receiver.
		w.state = StateReady
		w.waitRecvQ = nil
		w.recvVal = msg
		k.enqueueBack(w)
		k.emit(Event{Task: w.id, Kind: EvWake, Detail: "queue " + q.name})
		return true
	}
	if len(q.buf) < q.cap {
		q.buf = append(q.buf, msg)
		return true
	}
	t.state = StateBlocked
	t.waitSendQ = q
	t.sendVal = msg
	q.sendQ.push(t)
	k.emit(Event{Task: t.id, Kind: EvBlock, Detail: "queue-send " + q.name})
	return false
}

// handleRecv processes a receive request; on completion t.recvVal holds
// the message.
func (k *Kernel) handleRecv(t *Task, q *MsgQueue) bool {
	if len(q.buf) > 0 {
		t.recvVal = q.buf[0]
		q.buf = append(q.buf[:0], q.buf[1:]...)
		// A blocked sender can now deposit its message; its pending send
		// completes at its next dispatch.
		if w := q.sendQ.pop(); w != nil {
			q.buf = append(q.buf, w.sendVal)
			w.state = StateReady
			w.waitSendQ = nil
			k.enqueueBack(w)
			k.emit(Event{Task: w.id, Kind: EvWake, Detail: "queue " + q.name})
		}
		return true
	}
	t.state = StateBlocked
	t.waitRecvQ = q
	q.recvQ.push(t)
	k.emit(Event{Task: t.id, Kind: EvBlock, Detail: "queue-recv " + q.name})
	return false
}
