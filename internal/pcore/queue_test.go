package pcore

import (
	"testing"
	"testing/quick"
)

func TestQueueSendRecvBasic(t *testing.T) {
	k := newK(t, Config{})
	q := NewQueue("q", 4)
	var got []uint32
	_, _ = k.CreateTask("sender", 5, func(c *Ctx) {
		for i := uint32(1); i <= 3; i++ {
			c.QueueSend(q, i)
		}
	})
	_, _ = k.CreateTask("receiver", 5, func(c *Ctx) {
		for i := 0; i < 3; i++ {
			got = append(got, c.QueueRecv(q))
		}
	})
	k.RunUntilIdle(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueBlocksWhenEmpty(t *testing.T) {
	k := newK(t, Config{})
	q := NewQueue("q", 4)
	id, _ := k.CreateTask("receiver", 5, func(c *Ctx) {
		c.QueueRecv(q)
	})
	k.RunUntilIdle(100)
	info, _ := k.TaskInfo(id)
	if info.State != StateBlocked || info.WaitingOn != "q-recv:q" {
		t.Fatalf("info %+v", info)
	}
	if q.RecvWaiters() != 1 {
		t.Fatalf("recv waiters %d", q.RecvWaiters())
	}
}

func TestQueueBlocksWhenFull(t *testing.T) {
	k := newK(t, Config{})
	q := NewQueue("q", 2)
	id, _ := k.CreateTask("sender", 5, func(c *Ctx) {
		for i := uint32(0); i < 5; i++ {
			c.QueueSend(q, i)
		}
	})
	k.RunUntilIdle(100)
	info, _ := k.TaskInfo(id)
	if info.State != StateBlocked || info.WaitingOn != "q-send:q" {
		t.Fatalf("info %+v", info)
	}
	if q.Len() != 2 {
		t.Fatalf("buffered %d", q.Len())
	}
	// A receiver drains everything and unblocks the sender.
	var got []uint32
	_, _ = k.CreateTask("receiver", 5, func(c *Ctx) {
		for i := 0; i < 5; i++ {
			got = append(got, c.QueueRecv(q))
		}
	})
	k.RunUntilIdle(200)
	if len(got) != 5 {
		t.Fatalf("received %d", len(got))
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("order %v", got)
		}
	}
}

func TestQueueDirectHandoffOrder(t *testing.T) {
	// The highest-priority, longest-waiting receiver gets the message.
	k := newK(t, Config{})
	q := NewQueue("q", 1)
	var got []string
	mk := func(name string) func(*Ctx) {
		return func(c *Ctx) {
			v := c.QueueRecv(q)
			got = append(got, name)
			_ = v
		}
	}
	_, _ = k.CreateTask("low", 9, mk("low"))
	_, _ = k.CreateTask("high", 1, mk("high"))
	k.RunUntilIdle(100) // both block
	_, _ = k.CreateTask("sender", 5, func(c *Ctx) {
		c.QueueSend(q, 1)
		c.QueueSend(q, 2)
	})
	k.RunUntilIdle(100)
	if len(got) != 2 || got[0] != "high" || got[1] != "low" {
		t.Fatalf("wake order %v", got)
	}
}

func TestQueueSuspendBlockedReceiverRetries(t *testing.T) {
	k := newK(t, Config{})
	q := NewQueue("q", 1)
	var got uint32
	recvID, _ := k.CreateTask("receiver", 5, func(c *Ctx) {
		got = c.QueueRecv(q)
	})
	k.RunUntilIdle(10) // receiver blocks
	if err := k.SuspendTask(recvID); err != nil {
		t.Fatal(err)
	}
	if q.RecvWaiters() != 0 {
		t.Fatal("suspended receiver still queued")
	}
	// Send while the receiver is suspended: the message buffers.
	_, _ = k.CreateTask("sender", 5, func(c *Ctx) { c.QueueSend(q, 77) })
	k.RunUntilIdle(100)
	if err := k.ResumeTask(recvID); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle(100)
	if got != 77 {
		t.Fatalf("got %d", got)
	}
}

func TestQueueSuspendBlockedSenderRetries(t *testing.T) {
	k := newK(t, Config{})
	q := NewQueue("q", 1)
	sent := false
	_, _ = k.CreateTask("filler", 5, func(c *Ctx) { c.QueueSend(q, 1) })
	k.RunUntilIdle(10)
	sendID, _ := k.CreateTask("sender", 5, func(c *Ctx) {
		c.QueueSend(q, 2)
		sent = true
	})
	k.RunUntilIdle(10) // sender blocks on full queue
	if err := k.SuspendTask(sendID); err != nil {
		t.Fatal(err)
	}
	if q.SendWaiters() != 0 {
		t.Fatal("suspended sender still queued")
	}
	var got []uint32
	_, _ = k.CreateTask("receiver", 5, func(c *Ctx) {
		got = append(got, c.QueueRecv(q))
	})
	k.RunUntilIdle(100)
	if err := k.ResumeTask(sendID); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle(100)
	if !sent {
		t.Fatal("suspended sender never completed after resume")
	}
	if q.Len() != 1 {
		t.Fatalf("queue len %d (retried message should be buffered)", q.Len())
	}
}

func TestQueueDeleteBlockedTask(t *testing.T) {
	k := newK(t, Config{})
	q := NewQueue("q", 1)
	id, _ := k.CreateTask("receiver", 5, func(c *Ctx) { c.QueueRecv(q) })
	k.RunUntilIdle(10)
	if err := k.DeleteTask(id); err != nil {
		t.Fatal(err)
	}
	if q.RecvWaiters() != 0 {
		t.Fatal("deleted task still in queue waiters")
	}
}

func TestQueueMinCapacity(t *testing.T) {
	q := NewQueue("q", 0)
	if q.Cap() != 1 {
		t.Fatalf("cap %d", q.Cap())
	}
}

func TestQueuePipelineFIFOProperty(t *testing.T) {
	// Property: any message sequence pushed through a two-stage pipeline
	// arrives in order and completely.
	err := quick.Check(func(seed uint64, n8 uint8) bool {
		n := int(n8%30) + 1
		k := New(Config{})
		defer k.Shutdown()
		q1 := NewQueue("q1", 3)
		q2 := NewQueue("q2", 2)
		var out []uint32
		_, _ = k.CreateTask("stage1", 5, func(c *Ctx) {
			for i := 0; i < n; i++ {
				c.QueueSend(q1, uint32(i)^uint32(seed))
			}
		})
		_, _ = k.CreateTask("stage2", 5, func(c *Ctx) {
			for i := 0; i < n; i++ {
				c.QueueSend(q2, c.QueueRecv(q1)+1)
			}
		})
		_, _ = k.CreateTask("sink", 5, func(c *Ctx) {
			for i := 0; i < n; i++ {
				out = append(out, c.QueueRecv(q2))
			}
		})
		k.RunUntilIdle(10 * n * 6)
		if len(out) != n {
			return false
		}
		for i, v := range out {
			if v != (uint32(i)^uint32(seed))+1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQueueCrossSendDeadlockDetectable(t *testing.T) {
	// Two tasks fill each other's queues then block sending — a
	// queue-based deadlock that surfaces as kernel idleness with blocked
	// tasks (queues have no owner, so it is a hang, not a WFG cycle).
	k := newK(t, Config{})
	qa := NewQueue("qa", 1)
	qb := NewQueue("qb", 1)
	_, _ = k.CreateTask("a", 5, func(c *Ctx) {
		for i := uint32(0); ; i++ {
			c.QueueSend(qa, i) // fills qa, then blocks: b never drains it
			c.Yield()
		}
	})
	_, _ = k.CreateTask("b", 5, func(c *Ctx) {
		for i := uint32(0); ; i++ {
			c.QueueSend(qb, i)
			c.Yield()
		}
	})
	k.RunUntilIdle(1000)
	if !k.Idle() {
		t.Fatal("cross-send system still running")
	}
	snap := k.Snapshot()
	blocked := 0
	for _, ts := range snap.Tasks {
		if ts.State == StateBlocked {
			blocked++
		}
	}
	if blocked != 2 {
		t.Fatalf("blocked %d tasks, want 2", blocked)
	}
}
