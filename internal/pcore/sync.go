package pcore

import "sort"

// waiter is one parked task in a wait queue.
type waiter struct {
	task *Task
	seq  uint64 // enqueue order for FIFO tie-break
}

// waitQueue orders parked tasks by (priority, enqueue order) — the
// highest-priority, longest-waiting task wakes first, matching pCore's
// priority discipline.
type waitQueue struct {
	ws  []waiter
	seq uint64
}

func (q *waitQueue) push(t *Task) {
	q.ws = append(q.ws, waiter{task: t, seq: q.seq})
	q.seq++
}

func (q *waitQueue) empty() bool { return len(q.ws) == 0 }

func (q *waitQueue) len() int { return len(q.ws) }

// pop removes and returns the best waiter.
func (q *waitQueue) pop() *Task {
	if len(q.ws) == 0 {
		return nil
	}
	best := 0
	for i := 1; i < len(q.ws); i++ {
		if q.ws[i].task.prio < q.ws[best].task.prio ||
			(q.ws[i].task.prio == q.ws[best].task.prio && q.ws[i].seq < q.ws[best].seq) {
			best = i
		}
	}
	t := q.ws[best].task
	q.ws = append(q.ws[:best], q.ws[best+1:]...)
	return t
}

// remove deletes a specific task from the queue (suspension of a blocked
// task); it reports whether the task was present.
func (q *waitQueue) remove(t *Task) bool {
	for i, w := range q.ws {
		if w.task == t {
			q.ws = append(q.ws[:i], q.ws[i+1:]...)
			return true
		}
	}
	return false
}

// tasks returns the waiting tasks ordered by wake order (for dumps).
func (q *waitQueue) tasks() []*Task {
	out := make([]waiter, len(q.ws))
	copy(out, q.ws)
	sort.Slice(out, func(i, j int) bool {
		if out[i].task.prio != out[j].task.prio {
			return out[i].task.prio < out[j].task.prio
		}
		return out[i].seq < out[j].seq
	})
	ts := make([]*Task, len(out))
	for i, w := range out {
		ts[i] = w.task
	}
	return ts
}

// Sem is a counting semaphore with a priority wait queue. Wakeups use
// direct handoff: a signalled unit goes straight to the woken waiter
// (the count is not incremented), whose pending wait completes when it
// is next dispatched.
type Sem struct {
	name    string
	count   int
	waiters waitQueue
}

// Name returns the semaphore name.
func (s *Sem) Name() string { return s.name }

// Count returns the available units (not counting pending grants).
func (s *Sem) Count() int { return s.count }

// Waiters returns the number of blocked tasks.
func (s *Sem) Waiters() int { return s.waiters.len() }

// Mutex is a binary lock with an owner, enabling wait-for-graph deadlock
// analysis (the dining-philosophers resources of case study 2).
type Mutex struct {
	name    string
	owner   *Task
	waiters waitQueue
}

// Name returns the mutex name.
func (m *Mutex) Name() string { return m.name }

// Owner returns the owning task id, or InvalidTask when free.
func (m *Mutex) Owner() TaskID {
	if m.owner == nil {
		return InvalidTask
	}
	return m.owner.id
}

// Waiters returns the number of blocked tasks.
func (m *Mutex) Waiters() int { return m.waiters.len() }
