// Package pcore simulates the pCore microkernel — the runtime system the
// paper stress-tests on the C55x DSP core. The simulation reproduces the
// properties pTest observes: up to 16 concurrent tasks with unique
// priorities and 512-byte stacks, a preemptive priority-based scheduler,
// the six task-management services of Table I, counting semaphores and
// mutexes, and a block-pool allocator whose garbage collector is the
// fault site of the paper's first case study.
//
// Determinism: task bodies run on goroutines, but exactly one goroutine
// executes at any instant — the kernel hands control to a task over an
// unbuffered channel and takes it back at every kernel call — so the Go
// scheduler never influences simulated behaviour. All simulated faults
// are captured as *KernelFault values; they never escape as Go panics.
package pcore

import (
	"fmt"

	"repro/internal/clock"
)

// TaskID identifies a task slot; valid ids are 1..MaxTasks.
type TaskID uint16

// InvalidTask is the zero TaskID, never assigned to a task.
const InvalidTask TaskID = 0

// Priority is a task priority; numerically lower is more urgent
// (priority 0 is the highest), matching pCore's convention that the
// scheduler "always schedules the task with highest priority to run".
type Priority uint8

// NumPriorities is the number of distinct priority levels.
const NumPriorities = 32

// State is a task's scheduling state.
type State uint8

const (
	// StateFree marks an unused TCB slot.
	StateFree State = iota
	// StateReady means runnable, queued at its priority level.
	StateReady
	// StateRunning means currently dispatched.
	StateRunning
	// StateSuspended means stopped by task_suspend until task_resume.
	StateSuspended
	// StateBlocked means waiting on a semaphore or mutex.
	StateBlocked
	// StateTerminated means exited or deleted; TCB awaits garbage
	// collection.
	StateTerminated
)

// String returns the state name used in records and dumps.
func (s State) String() string {
	switch s {
	case StateFree:
		return "free"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateSuspended:
		return "suspended"
	case StateBlocked:
		return "blocked"
	case StateTerminated:
		return "terminated"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Service identifies one of pCore's task-management kernel services
// (Table I), plus the internal operations the simulator also meters.
type Service string

// The Table I services and their paper abbreviations.
const (
	SvcTaskCreate   Service = "TC"  // task_create
	SvcTaskDelete   Service = "TD"  // task_delete
	SvcTaskSuspend  Service = "TS"  // task_suspend
	SvcTaskResume   Service = "TR"  // task_resume
	SvcTaskChanprio Service = "TCH" // task_chanprio
	SvcTaskYield    Service = "TY"  // task_yield: terminate the running task
)

// TableIServices lists the six services in Table I order.
func TableIServices() []Service {
	return []Service{SvcTaskCreate, SvcTaskDelete, SvcTaskSuspend,
		SvcTaskResume, SvcTaskChanprio, SvcTaskYield}
}

// ServiceDescription returns Table I's description column.
func ServiceDescription(s Service) string {
	switch s {
	case SvcTaskCreate:
		return "Create a task"
	case SvcTaskDelete:
		return "Delete a task"
	case SvcTaskSuspend:
		return "Suspend a task"
	case SvcTaskResume:
		return "Resume a task"
	case SvcTaskChanprio:
		return "Change the priority of a task"
	case SvcTaskYield:
		return "Terminate the current running task"
	}
	return ""
}

// Virtual-cycle costs charged per kernel operation, loosely calibrated to
// a small RTOS on a 192 MHz VLIW DSP. Only relative magnitudes matter to
// the reproduction; the Table I bench reports these through the live
// kernel path.
const (
	CostTaskCreate   clock.Cycles = 120
	CostTaskDelete   clock.Cycles = 80
	CostTaskSuspend  clock.Cycles = 40
	CostTaskResume   clock.Cycles = 40
	CostTaskChanprio clock.Cycles = 30
	CostTaskYield    clock.Cycles = 60
	CostYield        clock.Cycles = 20
	CostSemOp        clock.Cycles = 25
	CostContextSw    clock.Cycles = 15 // pCore's multiset context switch
	CostIdle         clock.Cycles = 10
)

// KernelFault describes a simulated kernel crash (the slave-system
// failures the bug detector watches for). Once faulted, the kernel
// rejects all further operations with ErrCrashed.
type KernelFault struct {
	Reason string       // short machine-readable cause
	Detail string       // human-readable context
	Task   TaskID       // task involved, if any
	At     clock.Cycles // kernel-local cycle count at crash
}

func (f *KernelFault) Error() string {
	return fmt.Sprintf("pcore: kernel fault %q at cycle %d (task %d): %s",
		f.Reason, f.At, f.Task, f.Detail)
}

// Fault reasons produced by the simulator.
const (
	FaultPoolExhausted = "pool-exhausted" // allocation failed after GC
	FaultGCCorruption  = "gc-corruption"  // injected GC failure destroyed the free list
	FaultStackOverflow = "stack-overflow" // task exceeded its 512-byte stack
	FaultAssert        = "kernel-assert"  // internal invariant violated
	FaultDoubleFree    = "double-free"    // block freed twice
)

// Errors returned by kernel services (API-level failures, distinct from
// kernel faults: the kernel survives them).
type ServiceError struct {
	Service Service
	Task    TaskID
	Msg     string
}

func (e *ServiceError) Error() string {
	return fmt.Sprintf("pcore: %s(task %d): %s", e.Service, e.Task, e.Msg)
}

// Event is a kernel trace event, consumed by the recording layer.
type Event struct {
	At      clock.Cycles // kernel-local cycle count
	Task    TaskID
	Kind    EventKind
	Service Service // set for service events
	Detail  string
}

// EventKind classifies trace events.
type EventKind uint8

const (
	// EvService is the completion of a kernel service call.
	EvService EventKind = iota
	// EvDispatch is a context switch to a task.
	EvDispatch
	// EvBlock is a task entering a wait state.
	EvBlock
	// EvWake is a task leaving a wait state.
	EvWake
	// EvExit is a task terminating.
	EvExit
	// EvProgress is an application-level progress mark (Task.Progress).
	EvProgress
	// EvFault is a kernel crash.
	EvFault
	// EvGC is a garbage-collection pass.
	EvGC
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvService:
		return "service"
	case EvDispatch:
		return "dispatch"
	case EvBlock:
		return "block"
	case EvWake:
		return "wake"
	case EvExit:
		return "exit"
	case EvProgress:
		return "progress"
	case EvFault:
		return "fault"
	case EvGC:
		return "gc"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}
