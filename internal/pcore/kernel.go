package pcore

import (
	"fmt"

	"repro/internal/clock"
)

// Config sets kernel parameters; zero values take pCore defaults.
type Config struct {
	// MaxTasks is the TCB table size (default 16, pCore's limit).
	MaxTasks int
	// StackSize is each task's stack in bytes (default 512, the paper's
	// stress-test configuration).
	StackSize int
	// GCEvery runs a background garbage-collection pass every n completed
	// kernel services (default 8).
	GCEvery int
	// Quantum is the compute budget before an equal-priority round-robin
	// rotation (default 500 cycles).
	Quantum clock.Cycles
	// Faults seeds the kernel with simulated bugs.
	Faults FaultPlan
	// Noise, when non-nil, is consulted at every continuation point (a
	// task completing a system call that would keep the processor): a
	// true return forces a yield to the back of the priority queue. It
	// is the hook the ConTest-style noise-injection baseline uses to
	// randomly perturb the schedule at synchronization points.
	Noise func() bool
}

func (c Config) withDefaults() Config {
	if c.MaxTasks <= 0 {
		c.MaxTasks = 16
	}
	if c.StackSize <= 0 {
		c.StackSize = 512
	}
	if c.GCEvery <= 0 {
		c.GCEvery = 8
	}
	if c.Quantum == 0 {
		c.Quantum = 500
	}
	return c
}

// Kernel is the simulated pCore instance. Not safe for concurrent use;
// the co-simulation is single-threaded by design.
type Kernel struct {
	cfg  Config
	plan FaultPlan

	tasks     []*Task // index 1..MaxTasks; nil = free slot
	ready     [NumPriorities][]TaskID
	readyMask uint32

	tcbPool   *Pool
	stackPool *Pool

	cycles  clock.Cycles
	fault   *KernelFault
	lastRun TaskID
	current TaskID

	syscallCh chan struct{}
	curReq    request

	fstate   faultState
	svcCount int

	onEvent func(Event)

	svcCalls    map[Service]uint64
	svcCycles   map[Service]clock.Cycles
	ctxSwitches uint64
	dispatches  uint64
}

// New boots a kernel with the given configuration.
func New(cfg Config) *Kernel {
	cfg = cfg.withDefaults()
	k := &Kernel{
		cfg:       cfg,
		plan:      cfg.Faults,
		tasks:     make([]*Task, cfg.MaxTasks+1),
		tcbPool:   NewPool("tcb", cfg.MaxTasks),
		stackPool: NewPool("stack", cfg.MaxTasks),
		syscallCh: make(chan struct{}),
		svcCalls:  make(map[Service]uint64),
		svcCycles: make(map[Service]clock.Cycles),
	}
	return k
}

// Cycles returns the kernel-local virtual time consumed so far.
func (k *Kernel) Cycles() clock.Cycles { return k.cycles }

// Fault returns the crash record, or nil while the kernel is healthy.
func (k *Kernel) Fault() *KernelFault { return k.fault }

// Crashed reports whether the kernel has crashed.
func (k *Kernel) Crashed() bool { return k.fault != nil }

// OnEvent registers the trace hook (last registration wins).
func (k *Kernel) OnEvent(fn func(Event)) { k.onEvent = fn }

func (k *Kernel) emit(e Event) {
	e.At = k.cycles
	if k.onEvent != nil {
		k.onEvent(e)
	}
}

// crash records a kernel fault; the kernel refuses all work afterwards.
func (k *Kernel) crash(reason, detail string, task TaskID) *KernelFault {
	if k.fault != nil {
		return k.fault
	}
	k.fault = &KernelFault{Reason: reason, Detail: detail, Task: task, At: k.cycles}
	k.emit(Event{Task: task, Kind: EvFault, Detail: reason + ": " + detail})
	return k.fault
}

// --- ready queue management -------------------------------------------

func (k *Kernel) enqueueBack(t *Task) {
	t.state = StateReady
	k.ready[t.prio] = append(k.ready[t.prio], t.id)
	k.readyMask |= 1 << uint(t.prio)
}

func (k *Kernel) enqueueFront(t *Task) {
	if k.cfg.Noise != nil && k.cfg.Noise() {
		// Injected noise: a forced yield at this continuation point.
		k.enqueueBack(t)
		return
	}
	t.state = StateReady
	k.ready[t.prio] = append([]TaskID{t.id}, k.ready[t.prio]...)
	k.readyMask |= 1 << uint(t.prio)
}

func (k *Kernel) dequeue(t *Task) {
	q := k.ready[t.prio]
	for i, id := range q {
		if id == t.id {
			k.ready[t.prio] = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(k.ready[t.prio]) == 0 {
		k.readyMask &^= 1 << uint(t.prio)
	}
}

// pickNext pops the highest-priority ready task (lowest numeric prio).
func (k *Kernel) pickNext() *Task {
	if k.readyMask == 0 {
		return nil
	}
	for p := 0; p < NumPriorities; p++ {
		if k.readyMask&(1<<uint(p)) == 0 {
			continue
		}
		q := k.ready[p]
		id := q[0]
		k.ready[p] = q[1:]
		if len(k.ready[p]) == 0 {
			k.readyMask &^= 1 << uint(p)
		}
		return k.tasks[id]
	}
	return nil
}

// ReadyCount returns the number of ready tasks.
func (k *Kernel) ReadyCount() int {
	n := 0
	for p := 0; p < NumPriorities; p++ {
		n += len(k.ready[p])
	}
	return n
}

// Idle reports whether no task is ready to run.
func (k *Kernel) Idle() bool { return k.readyMask == 0 }

// --- dispatch loop -----------------------------------------------------

// Step dispatches the highest-priority ready task for one kernel event
// (run until its next system call) and processes that call. It returns
// the virtual-cycle cost and whether any task ran. A crashed kernel
// never runs.
func (k *Kernel) Step() (clock.Cycles, bool) {
	if k.fault != nil {
		return 0, false
	}
	t := k.pickNext()
	if t == nil {
		return 0, false
	}
	var cost clock.Cycles
	if k.lastRun != t.id {
		cost += CostContextSw
		k.ctxSwitches++
		t.sliceUsed = 0
	}
	k.lastRun = t.id
	k.current = t.id
	k.dispatches++
	t.state = StateRunning
	k.emit(Event{Task: t.id, Kind: EvDispatch})

	t.runCh <- struct{}{}
	<-k.syscallCh
	req := k.curReq
	t.syscalls++
	cost += k.handle(req)
	k.current = 0
	k.cycles += cost
	return cost, true
}

// RunUntilIdle steps the kernel until no task is ready, the kernel
// crashes, or maxSteps is exceeded; it returns the steps taken.
func (k *Kernel) RunUntilIdle(maxSteps int) int {
	steps := 0
	for steps < maxSteps {
		if _, ran := k.Step(); !ran {
			break
		}
		steps++
	}
	return steps
}

// handle processes one task request and returns its cycle cost. On
// return the requesting task is in a well-defined non-running state.
func (k *Kernel) handle(req request) clock.Cycles {
	t := req.task
	t.syscallErr = nil
	switch req.kind {
	case reqYield:
		k.enqueueBack(t)
		return CostYield

	case reqCompute:
		t.sliceUsed += req.cycles
		if t.sliceUsed >= k.cfg.Quantum {
			t.sliceUsed = 0
			k.enqueueBack(t)
		} else {
			k.enqueueFront(t)
		}
		return req.cycles

	case reqProgress:
		t.progress++
		k.emit(Event{Task: t.id, Kind: EvProgress})
		k.enqueueFront(t)
		return 1

	case reqStackPush:
		t.stackUsed += req.bytes
		if t.stackUsed > k.cfg.StackSize {
			if !k.plan.StackGuardOff {
				used := t.stackUsed
				k.killParked(t, "stack overflow")
				k.crash(FaultStackOverflow,
					fmt.Sprintf("task %q used %d of %d stack bytes", t.name, used, k.cfg.StackSize), t.id)
				return 2
			}
			// Unguarded overflow scribbles over the adjacent TCB.
			if n := k.neighborOf(t); n != nil {
				n.corrupted = true
			}
		}
		k.enqueueFront(t)
		return 2

	case reqStackPop:
		t.stackUsed -= req.bytes
		if t.stackUsed < 0 {
			t.stackUsed = 0
		}
		k.enqueueFront(t)
		return 2

	case reqSemWait:
		s := req.sem
		if s.count > 0 {
			s.count--
			k.enqueueFront(t)
			return CostSemOp
		}
		t.state = StateBlocked
		t.waitSem = s
		s.waiters.push(t)
		k.emit(Event{Task: t.id, Kind: EvBlock, Detail: "sem " + s.name})
		return CostSemOp

	case reqSemSignal:
		s := req.sem
		if w := s.waiters.pop(); w != nil {
			// Direct handoff: the unit goes to w, whose pending SemWait
			// completes at its next dispatch (wake status nil).
			w.state = StateReady
			w.waitSem = nil
			k.enqueueBack(w)
			k.emit(Event{Task: w.id, Kind: EvWake, Detail: "sem " + s.name})
		} else {
			s.count++
		}
		k.enqueueFront(t)
		return CostSemOp

	case reqMutexLock:
		m := req.mu
		switch {
		case m.owner == nil:
			m.owner = t
			k.enqueueFront(t)
		case m.owner == t:
			k.killParked(t, "recursive lock")
			k.crash(FaultAssert, fmt.Sprintf("task %q recursively locked %q", t.name, m.name), t.id)
		default:
			t.state = StateBlocked
			t.waitMu = m
			m.waiters.push(t)
			k.emit(Event{Task: t.id, Kind: EvBlock, Detail: "mutex " + m.name})
		}
		return CostSemOp

	case reqMutexUnlock:
		m := req.mu
		if m.owner != t {
			owner := m.Owner()
			k.killParked(t, "bad unlock")
			k.crash(FaultAssert, fmt.Sprintf("task %q unlocked %q owned by %d", t.name, m.name, owner), t.id)
			return CostSemOp
		}
		if w := m.waiters.pop(); w != nil {
			m.owner = w // direct ownership transfer
			w.state = StateReady
			w.waitMu = nil
			k.enqueueBack(w)
			k.emit(Event{Task: w.id, Kind: EvWake, Detail: "mutex " + m.name})
		} else {
			m.owner = nil
		}
		k.enqueueFront(t)
		return CostSemOp

	case reqQueueSend:
		if k.handleSend(t, req.q, req.msg) {
			k.enqueueFront(t)
		}
		return CostSemOp

	case reqQueueRecv:
		if k.handleRecv(t, req.q) {
			k.enqueueFront(t)
		}
		return CostSemOp

	case reqExit:
		k.cleanupLocked(t, "exit")
		return CostTaskYield

	case reqTaskPanic:
		k.cleanupLocked(t, "panic")
		k.crash(FaultAssert, fmt.Sprintf("task %q panicked: %s", t.name, req.detail), t.id)
		return CostTaskYield
	}
	k.crash(FaultAssert, fmt.Sprintf("unknown request kind %d", req.kind), t.id)
	return 0
}

// neighborOf returns the live task in the adjacent TCB slot (wrapping),
// the victim of an unguarded stack overflow.
func (k *Kernel) neighborOf(t *Task) *Task {
	for off := 1; off <= k.cfg.MaxTasks; off++ {
		id := TaskID((int(t.id)+off-1)%k.cfg.MaxTasks + 1)
		if id != t.id && k.tasks[id] != nil {
			return k.tasks[id]
		}
	}
	return nil
}

// cleanupLocked terminates a task that is NOT parked in a wait (it just
// made a request): releases its pool blocks and clears its slot. The
// goroutine has already ended or will end without touching the kernel.
func (k *Kernel) cleanupLocked(t *Task, why string) {
	k.releaseTask(t, why)
}

// releaseTask frees a task's resources and marks it terminated.
func (k *Kernel) releaseTask(t *Task, why string) {
	if t.state == StateTerminated {
		return
	}
	// Remove from any queue it might occupy.
	switch t.state {
	case StateReady, StateRunning:
		k.dequeue(t)
	case StateBlocked:
		if t.waitSem != nil {
			t.waitSem.waiters.remove(t)
			t.waitSem = nil
		}
		if t.waitMu != nil {
			t.waitMu.waiters.remove(t)
			t.waitMu = nil
		}
		if t.waitSendQ != nil {
			t.waitSendQ.sendQ.remove(t)
			t.waitSendQ = nil
		}
		if t.waitRecvQ != nil {
			t.waitRecvQ.recvQ.remove(t)
			t.waitRecvQ = nil
		}
	}
	t.state = StateTerminated
	if err := k.tcbPool.Release(t.tcbBlock); err != nil {
		k.crash(FaultDoubleFree, err.Error(), t.id)
	}
	if err := k.stackPool.Release(t.stackBlock); err != nil {
		k.crash(FaultDoubleFree, err.Error(), t.id)
	}
	k.tasks[t.id] = nil
	k.emit(Event{Task: t.id, Kind: EvExit, Detail: why})
}

// killParked terminates a task whose goroutine is parked waiting for
// dispatch: the kill handshake resumes it, the trampoline unwinds and
// acknowledges, and the kernel reclaims the slot.
func (k *Kernel) killParked(t *Task, why string) {
	t.killed = true
	t.runCh <- struct{}{}
	<-k.syscallCh // reqKilledAck
	k.releaseTask(t, why)
}

// --- garbage collection -------------------------------------------------

// maybeGC runs the periodic background collection after every GCEvery
// completed services.
func (k *Kernel) maybeGC() {
	k.svcCount++
	if k.svcCount%k.cfg.GCEvery == 0 {
		k.runGC("periodic")
	}
}

// runGC performs one collection pass over both pools, honouring the
// injected GC fault.
func (k *Kernel) runGC(why string) {
	r1, l1 := k.tcbPool.Collect(k.plan.GCLeakEvery)
	r2, l2 := k.stackPool.Collect(k.plan.GCLeakEvery)
	k.emit(Event{Kind: EvGC, Detail: fmt.Sprintf("%s: reclaimed %d, leaked %d", why, r1+r2, l1+l2)})
	if k.plan.GCCorruptAfterLeaks > 0 &&
		k.tcbPool.Leaked()+k.stackPool.Leaked() >= k.plan.GCCorruptAfterLeaks {
		k.crash(FaultGCCorruption,
			fmt.Sprintf("collector leaked %d tcb / %d stack blocks and corrupted the free list",
				k.tcbPool.Leaked(), k.stackPool.Leaked()), 0)
	}
}

// Pools exposes allocator occupancy for diagnostics and tests.
func (k *Kernel) Pools() (tcb, stack *Pool) { return k.tcbPool, k.stackPool }
