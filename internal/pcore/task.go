package pcore

import (
	"fmt"

	"repro/internal/clock"
)

// killedSignal unwinds a task goroutine that the kernel is terminating.
type killedSignal struct{}

// exitSignal unwinds a task goroutine that called Ctx.Exit.
type exitSignal struct{}

// errRetry is the internal wake status telling a blocking wrapper to
// re-issue its request (used when a blocked task was suspended out of a
// wait queue and later resumed without being granted the resource).
var errRetry = fmt.Errorf("pcore: retry wait")

// reqKind enumerates task→kernel requests.
type reqKind uint8

const (
	reqYield reqKind = iota
	reqExit
	reqCompute
	reqProgress
	reqStackPush
	reqStackPop
	reqSemWait
	reqSemSignal
	reqMutexLock
	reqMutexUnlock
	reqQueueSend
	reqQueueRecv
	reqKilledAck
	reqTaskPanic
)

// request is the single in-flight task→kernel message. Exactly one
// request exists at a time because exactly one goroutine runs at a time.
type request struct {
	kind   reqKind
	task   *Task
	cycles clock.Cycles // reqCompute burst
	bytes  int          // reqStackPush/Pop frame size
	sem    *Sem
	mu     *Mutex
	q      *MsgQueue
	msg    uint32 // reqQueueSend payload
	detail string // reqTaskPanic message
}

// Task is a pCore task control block plus its cooperative goroutine.
type Task struct {
	id    TaskID
	name  string
	prio  Priority
	state State
	entry func(*Ctx)

	k     *Kernel
	runCh chan struct{}

	killed  bool
	started bool

	tcbBlock   int
	stackBlock int
	stackUsed  int
	corrupted  bool // scribbled on by an unguarded stack overflow

	waitSem   *Sem
	waitMu    *Mutex
	waitSendQ *MsgQueue
	waitRecvQ *MsgQueue
	sendVal   uint32 // message offered while blocked sending
	recvVal   uint32 // message delivered by the kernel

	syscallErr error // kernel→task wake status

	progress  uint64
	syscalls  uint64
	created   clock.Cycles
	sliceUsed clock.Cycles
}

// ID returns the task id.
func (t *Task) ID() TaskID { return t.id }

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// Priority returns the current priority.
func (t *Task) Priority() Priority { return t.prio }

// State returns the scheduling state.
func (t *Task) State() State { return t.state }

// Progress returns the application progress counter.
func (t *Task) Progress() uint64 { return t.progress }

// trampoline is the goroutine body hosting the task's entry function.
// When it hands its final request to the kernel the goroutine is done and
// never parks again, so every reqExit/reqKilledAck/reqTaskPanic the
// kernel receives comes from a goroutine that needs no further handshake.
func (t *Task) trampoline() {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch r.(type) {
		case killedSignal:
			t.k.curReq = request{kind: reqKilledAck, task: t}
		case exitSignal:
			t.k.curReq = request{kind: reqExit, task: t}
		default:
			// Application code panicked inside the simulated task: surface
			// it as a kernel fault rather than crashing the host process.
			t.k.curReq = request{kind: reqTaskPanic, task: t, detail: fmt.Sprint(r)}
		}
		t.k.syscallCh <- struct{}{}
	}()
	<-t.runCh
	if t.killed {
		panic(killedSignal{})
	}
	t.entry(&Ctx{t: t})
	t.k.curReq = request{kind: reqExit, task: t}
	t.k.syscallCh <- struct{}{}
}

// syscall hands the request to the kernel and parks until redispatched.
func (t *Task) syscall(req request) error {
	k := t.k
	k.curReq = req
	k.syscallCh <- struct{}{}
	<-t.runCh
	if t.killed {
		panic(killedSignal{})
	}
	return t.syscallErr
}

// Ctx is the task-side kernel API handed to entry functions — the system
// calls a task running on pCore may perform on its own behalf. (The
// Table I task-management services operate on other tasks and are issued
// through the kernel/committee interface instead.)
type Ctx struct{ t *Task }

// ID returns the calling task's id.
func (c *Ctx) ID() TaskID { return c.t.id }

// Name returns the calling task's name.
func (c *Ctx) Name() string { return c.t.name }

// Priority returns the calling task's current priority.
func (c *Ctx) Priority() Priority { return c.t.prio }

// Yield gives up the processor to other ready tasks (the yield() of the
// paper's Figure 1) without changing state.
func (c *Ctx) Yield() { _ = c.t.syscall(request{kind: reqYield, task: c.t}) }

// Compute charges a burst of virtual cycles of pure computation; it is a
// preemption point but keeps the task ready.
func (c *Ctx) Compute(cycles int) {
	if cycles <= 0 {
		return
	}
	_ = c.t.syscall(request{kind: reqCompute, task: c.t, cycles: clock.Cycles(cycles)})
}

// Progress marks application-level progress; the bug detector treats a
// task that keeps scheduling without marking progress as potentially
// livelocked/starved.
func (c *Ctx) Progress() { _ = c.t.syscall(request{kind: reqProgress, task: c.t}) }

// Exit terminates the calling task voluntarily. It unwinds the task body
// and never returns.
func (c *Ctx) Exit() {
	panic(exitSignal{})
}

// StackPush models entering a function frame of the given size on the
// task's 512-byte stack; it returns an error only through kernel faulting
// (overflow crashes the slave, it does not return). Balance with StackPop.
func (c *Ctx) StackPush(bytes int) {
	_ = c.t.syscall(request{kind: reqStackPush, task: c.t, bytes: bytes})
}

// StackPop models leaving a function frame.
func (c *Ctx) StackPop(bytes int) {
	_ = c.t.syscall(request{kind: reqStackPop, task: c.t, bytes: bytes})
}

// SemWait blocks until the semaphore has a unit available and consumes it.
func (c *Ctx) SemWait(s *Sem) {
	for {
		err := c.t.syscall(request{kind: reqSemWait, task: c.t, sem: s})
		if err != errRetry {
			return
		}
	}
}

// SemSignal releases one unit of the semaphore.
func (c *Ctx) SemSignal(s *Sem) {
	_ = c.t.syscall(request{kind: reqSemSignal, task: c.t, sem: s})
}

// Lock acquires the mutex, blocking while another task owns it.
func (c *Ctx) Lock(m *Mutex) {
	for {
		err := c.t.syscall(request{kind: reqMutexLock, task: c.t, mu: m})
		if err != errRetry {
			return
		}
	}
}

// Unlock releases the mutex; unlocking a mutex the task does not own is
// a kernel assert (crashes the simulated slave, as on a tiny RTOS with
// assertions enabled).
func (c *Ctx) Unlock(m *Mutex) {
	_ = c.t.syscall(request{kind: reqMutexUnlock, task: c.t, mu: m})
}

// QueueSend enqueues a message, blocking while the queue is full.
func (c *Ctx) QueueSend(q *MsgQueue, msg uint32) {
	for {
		err := c.t.syscall(request{kind: reqQueueSend, task: c.t, q: q, msg: msg})
		if err != errRetry {
			return
		}
	}
}

// QueueRecv dequeues a message, blocking while the queue is empty.
func (c *Ctx) QueueRecv(q *MsgQueue) uint32 {
	for {
		err := c.t.syscall(request{kind: reqQueueRecv, task: c.t, q: q})
		if err != errRetry {
			return c.t.recvVal
		}
	}
}
