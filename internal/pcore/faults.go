package pcore

// FaultPlan configures the faults seeded into the simulated kernel. The
// zero value is a healthy kernel. The plans mirror the bug classes the
// paper's evaluation discovered (GC failure, deadlock-prone application
// code) plus the additional seeded faults used by the fault-coverage
// ablation (the paper's future-work item on verifying fault coverage).
type FaultPlan struct {
	// GCLeakEvery makes every n-th garbage-collection pass leak its blocks
	// instead of reclaiming them (case study 1's crash cause). The pool
	// shrinks under create/delete churn until allocation fails and the
	// kernel crashes with FaultPoolExhausted / FaultGCCorruption.
	GCLeakEvery int

	// GCCorruptAfterLeaks, when > 0, crashes the kernel with
	// FaultGCCorruption as soon as the cumulative leaked-block count
	// reaches the threshold — modelling the collector scribbling over the
	// free list rather than merely leaking. 0 means the kernel only
	// crashes when an allocation finally finds the pool empty.
	GCCorruptAfterLeaks int

	// DropResumeEvery makes every n-th task_resume a silent no-op (a lost
	// wakeup in the command path): the target task stays suspended while
	// the master believes it runs — a synchronization anomaly for the
	// detector's hang/starvation checks.
	DropResumeEvery int

	// MisplacePriorityEvery makes every n-th task_chanprio apply the
	// wrong priority value (sets the lowest priority instead), seeding
	// starvation of the affected task.
	MisplacePriorityEvery int

	// StackGuardOff disables the 512-byte stack overflow check, letting
	// overflowing tasks silently corrupt a neighbour: the next service
	// touching the neighbour task crashes the kernel with FaultAssert.
	StackGuardOff bool
}

// Healthy reports whether the plan injects no faults.
func (f FaultPlan) Healthy() bool {
	return f == FaultPlan{}
}

// counters tracks per-plan trigger state inside the kernel.
type faultState struct {
	resumeCalls   int
	chanprioCalls int
}
