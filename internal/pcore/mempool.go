package pcore

import "fmt"

// Pool is a fixed-block allocator in the style of a tiny RTOS: a free
// list of block indices plus a garbage list of blocks released by
// task_delete that the kernel's garbage collector reclaims later. The
// paper's first case study crashed pCore through "the failure of garbage
// collection" under task create/delete churn; FaultPlan.GCLeakEvery
// reproduces that failure mode here.
type Pool struct {
	name    string
	free    []int
	garbage []int
	inUse   map[int]bool
	size    int

	// leak counters for the injected fault
	leaked     int
	gcPasses   int
	blocksSeen int // garbage blocks processed across all passes
}

// NewPool returns a pool of n blocks, all free.
func NewPool(name string, n int) *Pool {
	p := &Pool{name: name, size: n, inUse: make(map[int]bool, n)}
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, i)
	}
	return p
}

// Size returns the total block count.
func (p *Pool) Size() int { return p.size }

// Free returns the immediately allocatable block count.
func (p *Pool) Free() int { return len(p.free) }

// Garbage returns the count of blocks awaiting collection.
func (p *Pool) Garbage() int { return len(p.garbage) }

// InUse returns the count of live blocks.
func (p *Pool) InUse() int { return len(p.inUse) }

// Leaked returns the number of blocks lost to the injected GC fault.
func (p *Pool) Leaked() int { return p.leaked }

// Alloc takes a block from the free list. ok is false when empty — the
// caller should run the garbage collector and retry.
func (p *Pool) Alloc() (int, bool) {
	if len(p.free) == 0 {
		return -1, false
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse[b] = true
	return b, true
}

// Release moves a live block to the garbage list (deferred reclamation,
// as pCore defers TCB/stack reuse until the deleted task is definitely
// off-CPU). Releasing an unknown block returns an error that the kernel
// converts into a double-free fault.
func (p *Pool) Release(b int) error {
	if !p.inUse[b] {
		return fmt.Errorf("pool %s: release of block %d not in use", p.name, b)
	}
	delete(p.inUse, b)
	p.garbage = append(p.garbage, b)
	return nil
}

// Collect runs one garbage-collection pass, moving garbage blocks back
// to the free list. leakEvery injects the paper's GC failure: every
// leakEvery-th garbage block the collector processes (counted across all
// passes) is silently dropped instead of reclaimed — it vanishes from the
// pool, exactly like a buggy collector losing freed TCBs. The pool
// therefore shrinks monotonically under create/delete churn until
// allocation fails, which is the crash dynamics of the paper's first
// case study. leakEvery <= 0 disables the fault. Collect reports how
// many blocks were reclaimed and how many leaked.
func (p *Pool) Collect(leakEvery int) (reclaimed, leaked int) {
	p.gcPasses++
	if len(p.garbage) == 0 {
		return 0, 0
	}
	for _, b := range p.garbage {
		p.blocksSeen++
		if leakEvery > 0 && p.blocksSeen%leakEvery == 0 {
			leaked++
			continue
		}
		p.free = append(p.free, b)
		reclaimed++
	}
	p.leaked += leaked
	p.garbage = p.garbage[:0]
	return reclaimed, leaked
}

// Exhausted reports whether no block can ever be produced again: free and
// garbage are both empty and at least one block has leaked or all blocks
// are in use.
func (p *Pool) Exhausted() bool {
	return len(p.free) == 0 && len(p.garbage) == 0
}
