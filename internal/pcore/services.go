package pcore

import (
	"fmt"
	"sort"

	"repro/internal/clock"
)

// This file implements the Table I task-management services as invoked
// remotely: "each task in pCore is controlled by the corresponding remote
// thread in Linux". The committee dispatches incoming remote commands to
// these methods.

func (k *Kernel) meter(s Service, cost clock.Cycles) {
	k.svcCalls[s]++
	k.svcCycles[s] += cost
	k.cycles += cost
	k.emit(Event{Kind: EvService, Service: s})
	k.maybeGC()
}

func (k *Kernel) serviceErr(s Service, id TaskID, format string, args ...any) error {
	return &ServiceError{Service: s, Task: id, Msg: fmt.Sprintf(format, args...)}
}

func (k *Kernel) liveTask(s Service, id TaskID) (*Task, error) {
	if id == InvalidTask || int(id) > k.cfg.MaxTasks {
		return nil, k.serviceErr(s, id, "no such task")
	}
	t := k.tasks[id]
	if t == nil {
		return nil, k.serviceErr(s, id, "no such task")
	}
	if t.corrupted {
		// A stack overflow with the guard disabled scribbled over this
		// TCB; the next service touching it brings the kernel down.
		k.crash(FaultAssert, fmt.Sprintf("TCB of task %q corrupted by stack overflow", t.name), id)
		return nil, k.fault
	}
	return t, nil
}

// CreateTask implements task_create (TC): allocate a TCB and stack from
// the kernel pools, register the entry function and make the task ready.
// Pool pressure triggers an emergency collection; if the pool is still
// empty afterwards the kernel crashes — on a healthy kernel that cannot
// happen, and with the GC fault armed it is exactly the paper's first
// discovered bug.
func (k *Kernel) CreateTask(name string, prio Priority, entry func(*Ctx)) (TaskID, error) {
	if k.fault != nil {
		return InvalidTask, k.fault
	}
	if prio >= NumPriorities {
		return InvalidTask, k.serviceErr(SvcTaskCreate, 0, "priority %d out of range", prio)
	}
	if entry == nil {
		return InvalidTask, k.serviceErr(SvcTaskCreate, 0, "nil entry")
	}
	slot := InvalidTask
	for id := TaskID(1); int(id) <= k.cfg.MaxTasks; id++ {
		if k.tasks[id] == nil {
			slot = id
			break
		}
	}
	if slot == InvalidTask {
		return InvalidTask, k.serviceErr(SvcTaskCreate, 0,
			"all %d task slots in use", k.cfg.MaxTasks)
	}
	alloc := func(p *Pool, what string) (int, error) {
		if b, ok := p.Alloc(); ok {
			return b, nil
		}
		k.runGC("emergency")
		if k.fault != nil {
			return -1, k.fault
		}
		if b, ok := p.Alloc(); ok {
			return b, nil
		}
		return -1, k.crash(FaultPoolExhausted,
			fmt.Sprintf("%s pool empty after emergency GC (leaked=%d)", what, p.Leaked()), 0)
	}
	tcbBlock, err := alloc(k.tcbPool, "tcb")
	if err != nil {
		return InvalidTask, err
	}
	stackBlock, err := alloc(k.stackPool, "stack")
	if err != nil {
		return InvalidTask, err
	}
	t := &Task{
		id:         slot,
		name:       name,
		prio:       prio,
		entry:      entry,
		k:          k,
		runCh:      make(chan struct{}),
		tcbBlock:   tcbBlock,
		stackBlock: stackBlock,
		created:    k.cycles,
	}
	k.tasks[slot] = t
	t.started = true
	go t.trampoline()
	k.enqueueBack(t)
	k.meter(SvcTaskCreate, CostTaskCreate)
	return slot, nil
}

// DeleteTask implements task_delete (TD): terminate the task in any
// state and release its resources for garbage collection. Deleting a
// task that owns a mutex leaks the lock — deliberately, as a tiny kernel
// does not track ownership for cleanup; the stress tester is there to
// expose exactly such hazards.
func (k *Kernel) DeleteTask(id TaskID) error {
	if k.fault != nil {
		return k.fault
	}
	t, err := k.liveTask(SvcTaskDelete, id)
	if err != nil {
		return err
	}
	k.killParked(t, "deleted")
	if k.fault != nil {
		return k.fault
	}
	k.meter(SvcTaskDelete, CostTaskDelete)
	return nil
}

// SuspendTask implements task_suspend (TS). A blocked task is pulled out
// of its wait queue; on resume its wait is retried.
func (k *Kernel) SuspendTask(id TaskID) error {
	if k.fault != nil {
		return k.fault
	}
	t, err := k.liveTask(SvcTaskSuspend, id)
	if err != nil {
		return err
	}
	switch t.state {
	case StateReady, StateRunning:
		k.dequeue(t)
	case StateBlocked:
		if t.waitSem != nil {
			t.waitSem.waiters.remove(t)
			t.waitSem = nil
		}
		if t.waitMu != nil {
			t.waitMu.waiters.remove(t)
			t.waitMu = nil
		}
		if t.waitSendQ != nil {
			t.waitSendQ.sendQ.remove(t)
			t.waitSendQ = nil
		}
		if t.waitRecvQ != nil {
			t.waitRecvQ.recvQ.remove(t)
			t.waitRecvQ = nil
		}
		t.syscallErr = errRetry
	case StateSuspended:
		return k.serviceErr(SvcTaskSuspend, id, "already suspended")
	default:
		return k.serviceErr(SvcTaskSuspend, id, "cannot suspend %s task", t.state)
	}
	t.state = StateSuspended
	k.emit(Event{Task: id, Kind: EvBlock, Detail: "suspended"})
	k.meter(SvcTaskSuspend, CostTaskSuspend)
	return nil
}

// ResumeTask implements task_resume (TR). Per the paper, "the task
// resuming operation can be performed only when the corresponding task is
// suspended"; resuming any other state is a service error. The
// DropResumeEvery fault makes every n-th resume a silent lost wakeup.
func (k *Kernel) ResumeTask(id TaskID) error {
	if k.fault != nil {
		return k.fault
	}
	t, err := k.liveTask(SvcTaskResume, id)
	if err != nil {
		return err
	}
	if t.state != StateSuspended {
		return k.serviceErr(SvcTaskResume, id, "task is %s, not suspended", t.state)
	}
	k.fstate.resumeCalls++
	if k.plan.DropResumeEvery > 0 && k.fstate.resumeCalls%k.plan.DropResumeEvery == 0 {
		// Lost wakeup: report success, change nothing.
		k.meter(SvcTaskResume, CostTaskResume)
		return nil
	}
	k.enqueueBack(t)
	k.emit(Event{Task: id, Kind: EvWake, Detail: "resumed"})
	k.meter(SvcTaskResume, CostTaskResume)
	return nil
}

// ChangePriority implements task_chanprio (TCH). The
// MisplacePriorityEvery fault applies the lowest priority instead of the
// requested one on every n-th call.
func (k *Kernel) ChangePriority(id TaskID, prio Priority) error {
	if k.fault != nil {
		return k.fault
	}
	if prio >= NumPriorities {
		return k.serviceErr(SvcTaskChanprio, id, "priority %d out of range", prio)
	}
	t, err := k.liveTask(SvcTaskChanprio, id)
	if err != nil {
		return err
	}
	k.fstate.chanprioCalls++
	applied := prio
	if k.plan.MisplacePriorityEvery > 0 && k.fstate.chanprioCalls%k.plan.MisplacePriorityEvery == 0 {
		applied = NumPriorities - 1
	}
	if t.state == StateReady {
		k.dequeue(t)
		t.prio = applied
		k.enqueueBack(t)
	} else {
		t.prio = applied
	}
	k.meter(SvcTaskChanprio, CostTaskChanprio)
	return nil
}

// TerminateTask implements task_yield (TY) as Table I defines it —
// "terminate the current running task" — applied through the one-to-one
// master-thread correspondence: the committee resolves the issuing
// thread's task and terminates it.
func (k *Kernel) TerminateTask(id TaskID) error {
	if k.fault != nil {
		return k.fault
	}
	t, err := k.liveTask(SvcTaskYield, id)
	if err != nil {
		return err
	}
	k.killParked(t, "TY")
	if k.fault != nil {
		return k.fault
	}
	k.meter(SvcTaskYield, CostTaskYield)
	return nil
}

// --- synchronization object factories -----------------------------------

// NewSem creates a counting semaphore with the given initial count.
// Synchronization objects are kernel-independent values; the kernel
// method exists for API symmetry with real pCore.
func (k *Kernel) NewSem(name string, initial int) *Sem { return NewSem(name, initial) }

// NewMutex creates a mutex.
func (k *Kernel) NewMutex(name string) *Mutex { return NewMutex(name) }

// NewSem creates a counting semaphore with the given initial count.
func NewSem(name string, initial int) *Sem {
	return &Sem{name: name, count: initial}
}

// NewMutex creates a mutex.
func NewMutex(name string) *Mutex {
	return &Mutex{name: name}
}

// --- introspection -------------------------------------------------------

// TaskSnapshot is one task's observable state for records and dumps.
type TaskSnapshot struct {
	ID        TaskID
	Name      string
	State     State
	Prio      Priority
	Progress  uint64
	Syscalls  uint64
	StackUsed int
	WaitingOn string // resource name while blocked
}

// Snapshot captures the kernel's observable state.
type Snapshot struct {
	Cycles      clock.Cycles
	Tasks       []TaskSnapshot
	Fault       *KernelFault
	TCBFree     int
	TCBGarbage  int
	TCBLeaked   int
	StackFree   int
	Ready       int
	CtxSwitches uint64
}

// Snapshot returns the current kernel state, tasks ordered by id.
func (k *Kernel) Snapshot() Snapshot {
	s := Snapshot{
		Cycles:      k.cycles,
		Fault:       k.fault,
		TCBFree:     k.tcbPool.Free(),
		TCBGarbage:  k.tcbPool.Garbage(),
		TCBLeaked:   k.tcbPool.Leaked(),
		StackFree:   k.stackPool.Free(),
		Ready:       k.ReadyCount(),
		CtxSwitches: k.ctxSwitches,
	}
	for id := TaskID(1); int(id) <= k.cfg.MaxTasks; id++ {
		t := k.tasks[id]
		if t == nil {
			continue
		}
		ts := TaskSnapshot{
			ID:        t.id,
			Name:      t.name,
			State:     t.state,
			Prio:      t.prio,
			Progress:  t.progress,
			Syscalls:  t.syscalls,
			StackUsed: t.stackUsed,
		}
		if t.waitSem != nil {
			ts.WaitingOn = "sem:" + t.waitSem.name
		}
		if t.waitMu != nil {
			ts.WaitingOn = "mutex:" + t.waitMu.name
		}
		if t.waitSendQ != nil {
			ts.WaitingOn = "q-send:" + t.waitSendQ.name
		}
		if t.waitRecvQ != nil {
			ts.WaitingOn = "q-recv:" + t.waitRecvQ.name
		}
		s.Tasks = append(s.Tasks, ts)
	}
	return s
}

// TaskInfo returns one task's snapshot; ok is false for free slots.
func (k *Kernel) TaskInfo(id TaskID) (TaskSnapshot, bool) {
	if id == InvalidTask || int(id) > k.cfg.MaxTasks || k.tasks[id] == nil {
		return TaskSnapshot{}, false
	}
	for _, ts := range k.Snapshot().Tasks {
		if ts.ID == id {
			return ts, true
		}
	}
	return TaskSnapshot{}, false
}

// LiveTasks returns the ids of all non-free task slots, ascending.
func (k *Kernel) LiveTasks() []TaskID {
	var out []TaskID
	for id := TaskID(1); int(id) <= k.cfg.MaxTasks; id++ {
		if k.tasks[id] != nil {
			out = append(out, id)
		}
	}
	return out
}

// WaitForGraph returns the blocked-on-mutex edges task → current owner,
// the input to the detector's deadlock (cycle) analysis. Edges to dead
// owners are excluded: a mutex whose owner was deleted (pCore leaks such
// locks deliberately) is an orphaned lock, reported separately through
// OrphanedWaiters — and because TCB slots are reused, a stale owner
// pointer must be compared by identity, not by id.
func (k *Kernel) WaitForGraph() map[TaskID][]TaskID {
	g := map[TaskID][]TaskID{}
	for id := TaskID(1); int(id) <= k.cfg.MaxTasks; id++ {
		t := k.tasks[id]
		if t == nil || t.state != StateBlocked || t.waitMu == nil || t.waitMu.owner == nil {
			continue
		}
		owner := t.waitMu.owner
		if k.tasks[owner.id] != owner {
			continue // owner terminated; slot may hold a new incarnation
		}
		g[id] = append(g[id], owner.id)
	}
	// Deterministic edge order.
	for id := range g {
		sort.Slice(g[id], func(i, j int) bool { return g[id][i] < g[id][j] })
	}
	return g
}

// OrphanedWaiters returns tasks blocked on mutexes whose owners have
// terminated — locks leaked by task_delete/task_yield on a lock holder.
// Such waits can never be satisfied; the bug detector reports them as a
// synchronization anomaly in their own right.
func (k *Kernel) OrphanedWaiters() []TaskID {
	var out []TaskID
	for id := TaskID(1); int(id) <= k.cfg.MaxTasks; id++ {
		t := k.tasks[id]
		if t == nil || t.state != StateBlocked || t.waitMu == nil || t.waitMu.owner == nil {
			continue
		}
		owner := t.waitMu.owner
		if k.tasks[owner.id] != owner {
			out = append(out, id)
		}
	}
	return out
}

// ServiceStats returns per-service call counts and cumulative cycles.
func (k *Kernel) ServiceStats() (calls map[Service]uint64, cycles map[Service]clock.Cycles) {
	calls = make(map[Service]uint64, len(k.svcCalls))
	cycles = make(map[Service]clock.Cycles, len(k.svcCycles))
	for s, n := range k.svcCalls {
		calls[s] = n
	}
	for s, c := range k.svcCycles {
		cycles[s] = c
	}
	return calls, cycles
}

// Shutdown terminates every remaining task so their goroutines exit.
// The kernel is unusable afterwards. Safe to call on a crashed kernel.
func (k *Kernel) Shutdown() {
	for id := TaskID(1); int(id) <= k.cfg.MaxTasks; id++ {
		t := k.tasks[id]
		if t == nil {
			continue
		}
		k.killParked(t, "shutdown")
	}
	if k.fault == nil {
		k.fault = &KernelFault{Reason: "shutdown", Detail: "kernel halted", At: k.cycles}
	}
}
