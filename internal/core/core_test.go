package core

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/bridge"
	"repro/internal/detector"
	"repro/internal/pattern"
	"repro/internal/pcore"
	"repro/internal/pfa"
)

// kcfgGCLeak is the shared faulty-kernel configuration for crash tests.
func kcfgGCLeak() pcore.Config {
	return pcore.Config{GCEvery: 4, Faults: pcore.FaultPlan{GCLeakEvery: 2}}
}

func TestAdaptiveTestCleanRun(t *testing.T) {
	out, err := AdaptiveTest(Config{
		RE:      pfa.PCoreRE,
		PD:      pfa.PCoreDistribution(),
		N:       4,
		S:       8,
		Op:      pattern.OpRoundRobin,
		Seed:    1,
		Factory: app.SpinFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bug != nil {
		t.Fatalf("clean run found %v", out.Bug)
	}
	if !out.Finished {
		t.Fatal("committer did not finish")
	}
	if out.CommandsIssued != 4*8 {
		t.Fatalf("issued %d commands", out.CommandsIssued)
	}
	if out.Journal.Len() != out.CommandsIssued {
		t.Fatalf("journal %d records", out.Journal.Len())
	}
	if out.Coverage.Services == 0 {
		t.Fatal("no service coverage")
	}
	if out.Duration == 0 || out.Steps == 0 {
		t.Fatal("no time consumed")
	}
}

func TestAdaptiveTestReproducible(t *testing.T) {
	cfg := Config{
		RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
		N: 3, S: 10, Op: pattern.OpRandom, Seed: 42,
		Factory: app.SpinFactory(),
	}
	a, err := AdaptiveTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AdaptiveTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Journal.Dump() != b.Journal.Dump() {
		t.Fatal("same seed, different journals")
	}
	if a.Duration != b.Duration || a.CommandsIssued != b.CommandsIssued {
		t.Fatal("same seed, different outcome")
	}
}

func TestAdaptiveTestAllServicesLegal(t *testing.T) {
	// With a legality-respecting PFA, no command may come back as a
	// service error: the patterns follow the task life cycle.
	out, err := AdaptiveTest(Config{
		RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
		N: 6, S: 20, Op: pattern.OpSequential, Seed: 7,
		Factory: app.SpinFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bug != nil {
		t.Fatalf("bug %v", out.Bug)
	}
	if out.StatusCounts[bridge.StatusServiceError] != 0 {
		t.Fatalf("sequential legal pattern produced service errors: %v", out.StatusCounts)
	}
}

func TestAdaptiveTestInterleavedLegality(t *testing.T) {
	// Interleaving legal per-task patterns keeps them legal per task:
	// every status should still be OK under round-robin merging.
	out, err := AdaptiveTest(Config{
		RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
		N: 5, S: 15, Op: pattern.OpRoundRobin, Seed: 11,
		Factory: app.SpinFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.StatusCounts[bridge.StatusServiceError] != 0 {
		t.Fatalf("statuses %v", out.StatusCounts)
	}
}

func TestCaseStudy1StressGCCrash(t *testing.T) {
	// The paper's first case study: 16 quicksort tasks under create/
	// delete churn with the GC fault armed → pCore crashes; pTest's bug
	// detector reports it with the fault attached.
	out, err := AdaptiveTest(Config{
		RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
		N: 16, S: 24, Op: pattern.OpRoundRobin, Seed: 3,
		Factory: app.QuicksortFactory(99),
		Kernel: pcore.Config{
			GCEvery: 4,
			Faults:  pcore.FaultPlan{GCLeakEvery: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bug == nil {
		t.Fatal("GC fault not discovered")
	}
	if out.Bug.Kind != detector.BugCrash {
		t.Fatalf("bug kind %v", out.Bug.Kind)
	}
	f := out.Bug.Fault
	if f == nil || (f.Reason != pcore.FaultPoolExhausted && f.Reason != pcore.FaultGCCorruption) {
		t.Fatalf("fault %v", f)
	}
	if out.Bug.Journal == "" {
		t.Fatal("no reproduction journal attached")
	}
}

func TestCaseStudy1HealthyKernelSurvives(t *testing.T) {
	// Same stress without the fault: the kernel must survive the churn.
	out, err := AdaptiveTest(Config{
		RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
		N: 16, S: 24, Op: pattern.OpRoundRobin, Seed: 3,
		Factory: app.QuicksortFactory(99),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bug != nil {
		t.Fatalf("healthy kernel reported %v", out.Bug)
	}
	if !out.Finished {
		t.Fatal("stress run did not finish")
	}
}

// suspendResumeStress is the case-study-2 stress distribution: pure
// suspend/resume cycles with task deletion pruned away (deleting a fork
// holder orphans the lock, a different anomaly measured separately by
// the fault-matrix ablation).
func suspendResumeStress() pfa.Distribution {
	return pfa.Distribution{
		pfa.StartLabel: {"TC": 1},
		"TC":           {"TS": 1},
		"TS":           {"TR": 1},
		"TR":           {"TS": 1, "TD": 0},
	}
}

func TestCaseStudy2DiningDeadlock(t *testing.T) {
	// The paper's second case study: three philosopher tasks over three
	// mutually exclusive resources; the merger's cyclic suspend/resume
	// stress forces the cyclic acquisition order and pTest discovers the
	// deadlock as a wait-for-graph cycle. (Seed 0 is verified
	// deterministic; the merger-op bench sweeps the discovery rate.)
	factory, _ := app.Philosophers(3, 100000, false)
	out, err := AdaptiveTest(Config{
		RE:         "TC (TS TR)+ TD$",
		PD:         suspendResumeStress(),
		N:          3,
		S:          41,
		Op:         pattern.OpCyclic,
		Seed:       0,
		CommandGap: 100,
		Factory:    factory,
		Kernel:     pcore.Config{Quantum: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bug == nil || out.Bug.Kind != detector.BugDeadlock {
		t.Fatalf("bug %v", out.Bug)
	}
	if len(out.Bug.Cycle) < 2 {
		t.Fatalf("cycle %v", out.Bug.Cycle)
	}
	if out.Bug.Journal == "" {
		t.Fatal("no reproduction journal")
	}
}

func TestCaseStudy2SequentialMissesDeadlock(t *testing.T) {
	// Without interleaving (sequential op) the same program and the same
	// pattern content never deadlock — the contrast that makes the
	// merger the load-bearing component.
	factory, _ := app.Philosophers(3, 100000, false)
	out, err := AdaptiveTest(Config{
		RE:         "TC (TS TR)+ TD$",
		PD:         suspendResumeStress(),
		N:          3,
		S:          41,
		Op:         pattern.OpSequential,
		Seed:       0,
		CommandGap: 100,
		Factory:    factory,
		Kernel:     pcore.Config{Quantum: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bug != nil {
		t.Fatalf("sequential op found %v", out.Bug)
	}
}

func TestCaseStudy2OrphanedLockAnomaly(t *testing.T) {
	// With task deletion left in the stress pattern, pTest instead
	// discovers the orphaned-lock anomaly: TD of a fork holder leaks the
	// mutex and later incarnations block forever.
	factory, _ := app.Philosophers(3, 100000, false)
	out, err := AdaptiveTest(Config{
		RE:      "TC (TS TR)+ TD$",
		N:       3,
		S:       40,
		Op:      pattern.OpCyclic,
		Seed:    0,
		Factory: factory,
		Kernel:  pcore.Config{Quantum: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bug == nil || out.Bug.Kind != detector.BugHang {
		t.Fatalf("bug %v", out.Bug)
	}
	if !strings.Contains(out.Bug.Detail, "owned by terminated tasks") {
		t.Fatalf("detail %q", out.Bug.Detail)
	}
}

func TestCampaignFindsFirstBug(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{
		Base: Config{
			RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
			N: 8, S: 16, Op: pattern.OpRoundRobin, Seed: 10,
			Factory: app.QuicksortFactory(5),
			Kernel: pcore.Config{
				GCEvery: 4,
				Faults:  pcore.FaultPlan{GCLeakEvery: 2},
			},
		},
		Trials: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) == 0 {
		t.Fatal("campaign found nothing")
	}
	if res.FirstBugTrial == 0 {
		t.Fatal("first bug trial unset")
	}
	if res.BugRate() <= 0 {
		t.Fatal("bug rate zero")
	}
	if res.Trials > 5 {
		t.Fatalf("ran %d trials", res.Trials)
	}
}

func TestCampaignKeepGoing(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{
		Base: Config{
			RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
			N: 2, S: 6, Op: pattern.OpSequential, Seed: 20,
			Factory: app.SpinFactory(),
		},
		Trials:    3,
		KeepGoing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 3 || res.CleanFinishes != 3 {
		t.Fatalf("trials %d clean %d", res.Trials, res.CleanFinishes)
	}
}

func TestDedupRemovesReplicates(t *testing.T) {
	// Tiny pattern space: duplicates are inevitable; Dedup must remove
	// them before merging.
	out, err := AdaptiveTest(Config{
		RE: "TC TD$", N: 8, S: 2, Op: pattern.OpRoundRobin, Seed: 5,
		Dedup:   true,
		Factory: app.SpinFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Patterns) >= 8 {
		t.Fatalf("dedup kept %d patterns", len(out.Patterns))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := AdaptiveTest(Config{RE: "(((", N: 1, S: 1}); err == nil {
		t.Fatal("bad RE accepted")
	}
	if _, err := AdaptiveTest(Config{
		RE: "a | b",
		PD: pfa.Distribution{pfa.StartLabel: {"a": -1, "b": 2}},
		N:  1, S: 1,
	}); err == nil {
		t.Fatal("bad PD accepted")
	}
}

func TestArchitectureWiring(t *testing.T) {
	// Figure 2 structural check: one run touches every architecture box —
	// pattern generator (patterns), pattern merger (merged), committer
	// (results/journal), committee (slave services executed), bug
	// detector (clean verdict), communication infrastructure (commands
	// travelled the bridge).
	out, err := AdaptiveTest(Config{
		RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
		N: 2, S: 6, Op: pattern.OpRoundRobin, Seed: 2,
		Factory: app.SpinFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Patterns) != 2 {
		t.Fatal("pattern generator inactive")
	}
	if out.Merged.Len() != 12 {
		t.Fatal("pattern merger inactive")
	}
	if out.CommandsIssued != 12 {
		t.Fatal("committer inactive")
	}
	if out.StatusCounts[bridge.StatusOK] == 0 {
		t.Fatal("committee inactive")
	}
	if out.Journal.Len() == 0 {
		t.Fatal("state recording inactive")
	}
}
