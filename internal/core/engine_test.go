package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/app"
	"repro/internal/committee"
	"repro/internal/pattern"
	"repro/internal/pcore"
	"repro/internal/pfa"
)

// digest renders every observable field of an outcome that the
// determinism contract covers: failure class, command count, virtual
// time, step count, coverage, statuses and the merged schedule itself.
// (fmt prints maps in sorted key order, so StatusCounts digests are
// stable.)
func digest(out *Outcome) string {
	kind := "clean"
	if out.Bug != nil {
		kind = string(out.Bug.Kind)
	}
	return fmt.Sprintf("seed=%d bug=%s finished=%v cmds=%d dur=%d steps=%d cov=%v status=%v dups=%d merged=%v",
		out.Seed, kind, out.Finished, out.CommandsIssued, out.Duration,
		out.Steps, out.Coverage, out.StatusCounts, out.DuplicatesRemoved,
		out.Merged.Entries)
}

func digests(outs []*Outcome) []string {
	ds := make([]string, len(outs))
	for i, out := range outs {
		ds[i] = digest(out)
	}
	return ds
}

// TestParallelCampaignDeterminism asserts the engine's core invariant
// for every merger op: a Parallelism=4 campaign produces trial-for-trial
// identical outcomes to the sequential run.
func TestParallelCampaignDeterminism(t *testing.T) {
	for _, op := range pattern.Ops() {
		base := Config{
			RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
			N: 4, S: 10, Op: op, Seed: 7,
			Factory: app.QuicksortFactory(11),
			Kernel:  pcoreGCFault(),
		}
		seq, err := RunCampaign(CampaignConfig{Base: base, Trials: 6, KeepGoing: true})
		if err != nil {
			t.Fatalf("op %v: sequential: %v", op, err)
		}
		par, err := RunCampaign(CampaignConfig{Base: base, Trials: 6, KeepGoing: true, Parallelism: 4})
		if err != nil {
			t.Fatalf("op %v: parallel: %v", op, err)
		}
		if seq.Trials != par.Trials {
			t.Fatalf("op %v: trials %d vs %d", op, seq.Trials, par.Trials)
		}
		ds, dp := digests(seq.Outcomes), digests(par.Outcomes)
		for i := range ds {
			if ds[i] != dp[i] {
				t.Fatalf("op %v trial %d diverged:\nseq: %s\npar: %s", op, i+1, ds[i], dp[i])
			}
		}
		if seq.FirstBugTrial != par.FirstBugTrial || len(seq.Bugs) != len(par.Bugs) ||
			seq.TotalCommands != par.TotalCommands || seq.TotalDuration != par.TotalDuration ||
			seq.CleanFinishes != par.CleanFinishes {
			t.Fatalf("op %v: aggregates diverged: %+v vs %+v", op, seq, par)
		}
	}
}

func pcoreGCFault() pcore.Config {
	return pcore.Config{GCEvery: 4, Faults: pcore.FaultPlan{GCLeakEvery: 2}}
}

// TestParallelEarlyCancelMatchesSequential checks the KeepGoing=false
// contract: the parallel campaign stops at the same trial, reports the
// same FirstBugTrial and keeps exactly the prefix a sequential scan
// would have produced — even though later-indexed trials may have run
// speculatively and been discarded.
func TestParallelEarlyCancelMatchesSequential(t *testing.T) {
	newPhilosophers := func() committee.Factory {
		f, _ := app.Philosophers(3, 100000, false)
		return f
	}
	base := Config{
		RE: "TC (TS TR)+ TD$", PD: suspendResumePD(),
		N: 3, S: 41, Op: pattern.OpCyclic, Seed: 0, CommandGap: 100,
		NewFactory: newPhilosophers,
		Kernel:     quantumKernel(),
	}
	seq, err := RunCampaign(CampaignConfig{Base: base, Trials: 8})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCampaign(CampaignConfig{Base: base, Trials: 8, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Bugs) == 0 {
		t.Fatal("scenario found no bug; the early-cancel path is untested")
	}
	if seq.FirstBugTrial != par.FirstBugTrial {
		t.Fatalf("FirstBugTrial %d vs %d", seq.FirstBugTrial, par.FirstBugTrial)
	}
	if seq.Trials != par.Trials || len(seq.Bugs) != len(par.Bugs) {
		t.Fatalf("trials %d/%d bugs %d/%d", seq.Trials, par.Trials, len(seq.Bugs), len(par.Bugs))
	}
	ds, dp := digests(seq.Outcomes), digests(par.Outcomes)
	for i := range ds {
		if ds[i] != dp[i] {
			t.Fatalf("trial %d diverged:\nseq: %s\npar: %s", i+1, ds[i], dp[i])
		}
	}
}

func suspendResumePD() pfa.Distribution {
	return pfa.Distribution{
		pfa.StartLabel: {"TC": 1},
		"TC":           {"TS": 1},
		"TS":           {"TR": 1},
		"TR":           {"TS": 1, "TD": 0},
	}
}

func quantumKernel() pcore.Config {
	return pcore.Config{Quantum: 1 << 30}
}

// TestAdaptiveWindowOneMatchesSequential: the batched-refinement mode
// with Window=1 must reproduce the classic trial-by-trial refinement
// exactly, at any parallelism.
func TestAdaptiveWindowOneMatchesSequential(t *testing.T) {
	base := Config{
		RE: pfa.PCoreRE,
		PD: pfa.Distribution{
			pfa.StartLabel: {"TC": 1},
			"TC":           {"TCH": 0.97, "TS": 0.01, "TD": 0.01, "TY": 0.01},
			"TCH":          {"TCH": 0.97, "TS": 0.01, "TD": 0.01, "TY": 0.01},
			"TS":           {"TR": 1},
			"TR":           {"TCH": 0.97, "TS": 0.01, "TD": 0.01, "TY": 0.01},
		},
		N: 3, S: 8, Op: pattern.OpRoundRobin, Seed: 3,
		Factory: app.SpinFactory(),
	}
	seq, err := RunAdaptiveCampaign(AdaptiveCampaignConfig{
		Base: base, Trials: 5, Alpha: 0.8, KeepGoing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAdaptiveCampaign(AdaptiveCampaignConfig{
		Base: base, Trials: 5, Alpha: 0.8, KeepGoing: true, Parallelism: 4, Window: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.TransitionCoverage, par.TransitionCoverage) {
		t.Fatalf("coverage trajectory diverged: %v vs %v", seq.TransitionCoverage, par.TransitionCoverage)
	}
	if !reflect.DeepEqual(seq.FinalPD, par.FinalPD) {
		t.Fatalf("final distribution diverged")
	}
	ds, dp := digests(seq.Outcomes), digests(par.Outcomes)
	for i := range ds {
		if ds[i] != dp[i] {
			t.Fatalf("trial %d diverged:\nseq: %s\npar: %s", i+1, ds[i], dp[i])
		}
	}
}

// TestAdaptiveWindowedBatchRuns sanity-checks the throughput mode: a
// window of 4 refines once per window and still covers every trial.
func TestAdaptiveWindowedBatchRuns(t *testing.T) {
	res, err := RunAdaptiveCampaign(AdaptiveCampaignConfig{
		Base: Config{
			RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
			N: 3, S: 8, Op: pattern.OpRoundRobin, Seed: 5,
			Factory: app.SpinFactory(),
		},
		Trials: 8, Alpha: 0.5, KeepGoing: true, Parallelism: 4, Window: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 8 || len(res.TransitionCoverage) != 8 {
		t.Fatalf("trials %d coverage points %d", res.Trials, len(res.TransitionCoverage))
	}
	if res.FinalPD == nil {
		t.Fatal("no final distribution")
	}
}

// TestCampaignCompilesPFAOnce asserts the compiled-PFA cache: a whole
// campaign — including the per-trial execution half that used to
// recompile — performs exactly one full FromRegex construction for a
// distribution it has never seen.
func TestCampaignCompilesPFAOnce(t *testing.T) {
	// A distribution with probabilities no other test uses, so the cache
	// cannot already hold this key.
	pd := pfa.Distribution{
		pfa.StartLabel: {"TC": 1},
		"TC":           {"TCH": 0.13571113, "TS": 0.17192329, "TD": 0.31374143, "TY": 0.37862415},
		"TCH":          {"TCH": 0.25, "TS": 0.25, "TD": 0.25, "TY": 0.25},
		"TS":           {"TR": 1},
		"TR":           {"TCH": 0.25, "TS": 0.25, "TD": 0.25, "TY": 0.25},
	}
	before := pfa.CompileCount()
	_, err := RunCampaign(CampaignConfig{
		Base: Config{
			RE: pfa.PCoreRE, PD: pd,
			N: 4, S: 8, Op: pattern.OpRoundRobin, Seed: 2,
			Factory: app.SpinFactory(),
		},
		Trials: 6, KeepGoing: true, Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pfa.CompileCount() - before; got != 1 {
		t.Fatalf("campaign performed %d PFA compilations, want 1", got)
	}
}

// TestParallelCampaignRace exercises the worker pool with enough
// concurrently simulated platforms to surface any shared state between
// them (journals, coverage trackers, kernels, bridges). Run with -race.
func TestParallelCampaignRace(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{
		Base: Config{
			RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
			N: 8, S: 12, Op: pattern.OpRandom, Seed: 1,
			Factory: app.QuicksortFactory(42),
			Kernel:  pcoreGCFault(),
		},
		Trials: 8, KeepGoing: true, Parallelism: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 8 {
		t.Fatalf("ran %d trials", res.Trials)
	}
	// Stateful workload under the per-trial factory builder: fresh forks
	// per platform, no cross-trial sharing.
	res, err = RunCampaign(CampaignConfig{
		Base: Config{
			RE: "TC (TS TR)+ TD$", PD: suspendResumePD(),
			N: 3, S: 21, Op: pattern.OpCyclic, Seed: 1, CommandGap: 100,
			NewFactory: func() committee.Factory {
				f, _ := app.Philosophers(3, 2000, false)
				return f
			},
			Kernel: quantumKernel(),
		},
		Trials: 8, KeepGoing: true, Parallelism: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 8 {
		t.Fatalf("ran %d trials", res.Trials)
	}
}
