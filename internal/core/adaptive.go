package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/nfa"
	"repro/internal/pfa"
)

// Coverage-guided refinement: the paper's future work asks how "the
// influence of probability distributions on the generation of test
// pattern" should be handled "for different testing scenarios". This
// file implements the natural adaptive answer: between campaign trials,
// reweight the distribution toward PFA transitions the executed commands
// have not exercised yet, so the pattern generator spends its budget on
// unexplored behaviour while the regular expression keeps every pattern
// legal.

// RefineDistribution blends the base distribution with an
// inverse-frequency boost: for each state, a transition taken c times
// out of that state's total gets weight proportional to
// (1-alpha)*base + alpha*(1/(1+c)) normalized per state. alpha in [0,1]
// sets how aggressively the refinement chases uncovered transitions
// (0 returns base unchanged, 1 ignores base entirely).
func RefineDistribution(machine *pfa.PFA, counts map[string]int, base pfa.Distribution, alpha float64) pfa.Distribution {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	out := pfa.Distribution{}
	for s := 0; s < machine.NumStates(); s++ {
		state := nfa.StateID(s)
		trans := machine.Transitions(state)
		if len(trans) == 0 {
			continue
		}
		label := machine.Label(state)
		if label == "" {
			label = pfa.StartLabel
		}
		if out[label] != nil {
			continue // label already refined (states sharing labels pool)
		}
		cond := map[string]float64{}
		// Inverse-frequency boost, normalized over this state's symbols.
		boostTotal := 0.0
		boosts := map[string]float64{}
		for _, tr := range trans {
			c := counts[label+">"+tr.Symbol]
			b := 1.0 / float64(1+c)
			boosts[tr.Symbol] += b
			boostTotal += b
		}
		for _, tr := range trans {
			baseP := 0.0
			if base != nil && base[label] != nil {
				baseP = base[label][tr.Symbol]
			} else {
				baseP = 1.0 / float64(len(trans))
			}
			cond[tr.Symbol] = (1-alpha)*baseP + alpha*boosts[tr.Symbol]/boostTotal
		}
		out[label] = cond
	}
	return out
}

// NoRefinement disables distribution refinement when assigned to
// AdaptiveCampaignConfig.Alpha — the campaign then measures the fixed
// base distribution with the same coverage bookkeeping, which is the
// control arm of the refinement ablation.
const NoRefinement = -1.0

// AdaptiveCampaignConfig runs a refinement campaign: after every
// refinement window the distribution is reweighted toward unexercised
// transitions.
type AdaptiveCampaignConfig struct {
	Base Config
	// Trials is the number of runs (default 10).
	Trials int
	// Alpha is the refinement aggressiveness in (0, 1]; 0 takes the
	// default 0.5 and NoRefinement (-1) disables refinement entirely.
	Alpha float64
	// KeepGoing continues past failures (default: stop at first bug).
	KeepGoing bool
	// Parallelism shards the trials of one refinement window across a
	// worker pool (0/1 sequential, negative = one worker per CPU).
	Parallelism int
	// Window is the batched-refinement size: that many consecutive
	// seeds run against the current distribution, their counts fold in
	// trial order, and refinement happens once per window. Window 1
	// (the default) refines after every trial — exactly the classic
	// sequential semantics; larger windows trade refinement fidelity
	// for parallel throughput, since trials inside a window have no
	// sequential dependency.
	Window int
}

// AdaptiveCampaignResult extends the campaign result with the coverage
// trajectory and the final refined distribution.
type AdaptiveCampaignResult struct {
	CampaignResult
	// TransitionCoverage per trial, cumulative over all commands so far.
	TransitionCoverage []float64
	// FinalPD is the distribution after the last refinement.
	FinalPD pfa.Distribution
}

// RunAdaptiveCampaign executes the refinement loop. Refinement is an
// inherently sequential dependency between trials, so parallelism works
// on windows: Window consecutive seeds run against the frozen current
// distribution (sharded across Parallelism workers), their counts fold
// in trial order, and the distribution refines once per window. The
// default Window of 1 reproduces the classic trial-by-trial refinement
// bit for bit at any Parallelism setting.
func RunAdaptiveCampaign(cfg AdaptiveCampaignConfig) (*AdaptiveCampaignResult, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 10
	}
	refine := cfg.Alpha >= 0
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.5
	}
	window := cfg.Window
	if window <= 0 {
		window = 1
	}
	base := cfg.Base.withDefaults()
	machine, err := pfa.Compile(base.RE, base.PD)
	if err != nil {
		return nil, fmt.Errorf("core: adaptive campaign: %w", err)
	}

	res := &AdaptiveCampaignResult{}
	pd := base.PD
	counts := map[string]int{}   // cumulative label>symbol counts
	covered := map[string]bool{} // cumulative machine edges seen
	edges := edgeSet(machine)

	for start := 0; start < cfg.Trials; start += window {
		w := window
		if start+w > cfg.Trials {
			w = cfg.Trials - start
		}
		// The whole window samples from one frozen distribution, so its
		// machine compiles once. Refined distributions are single-use —
		// building them uncached keeps per-window churn out of the
		// shared compile cache.
		winMachine := machine
		if refine && start > 0 {
			var err error
			winMachine, err = pfa.FromRegex(base.RE, pd)
			if err != nil {
				return res, fmt.Errorf("core: adaptive campaign: %w", err)
			}
		}
		outs, runErr := engine.Run(w, cfg.Parallelism,
			func(j int) (*Outcome, error) {
				run := base
				run.PD = pd
				run.Seed = base.Seed + uint64(start+j)
				out, err := adaptiveTest(run, winMachine)
				if err != nil {
					return nil, fmt.Errorf("core: adaptive trial %d: %w", start+j+1, err)
				}
				return out, nil
			},
			func(out *Outcome) bool { return !cfg.KeepGoing && out.Bug != nil })

		stopped := false
		for j, out := range outs {
			res.Trials++
			res.Outcomes = append(res.Outcomes, out)
			res.TotalCommands += out.CommandsIssued
			res.TotalDuration += out.Duration

			// Accumulate per-task transition counts from the issued commands.
			last := map[int]string{}
			issued := out.Merged.Entries
			if out.CommandsIssued < len(issued) {
				issued = issued[:out.CommandsIssued]
			}
			for _, e := range issued {
				prev, ok := last[e.Task]
				if !ok {
					prev = pfa.StartLabel
				}
				key := prev + ">" + e.Symbol
				counts[key]++
				if edges[key] {
					// Lifecycle restarts produce prev>symbol pairs (e.g. TD>TC)
					// that are not machine edges; only true edges count.
					covered[key] = true
				}
				last[e.Task] = e.Symbol
			}
			cov := 0.0
			if len(edges) > 0 {
				cov = float64(len(covered)) / float64(len(edges))
			}
			res.TransitionCoverage = append(res.TransitionCoverage, cov)

			if out.Bug != nil {
				res.Bugs = append(res.Bugs, out.Bug)
				if res.FirstBugTrial == 0 {
					res.FirstBugTrial = start + j + 1
				}
				if !cfg.KeepGoing {
					stopped = true
				}
			} else if out.Finished {
				res.CleanFinishes++
			}
		}
		if runErr != nil {
			return res, runErr
		}
		if stopped {
			break
		}
		if refine {
			pd = RefineDistribution(machine, counts, base.PD, cfg.Alpha)
		}
	}
	res.FinalPD = pd
	return res, nil
}

// edgeSet returns the PFA's distinct label>symbol edges.
func edgeSet(machine *pfa.PFA) map[string]bool {
	edges := map[string]bool{}
	for s := 0; s < machine.NumStates(); s++ {
		label := machine.Label(nfa.StateID(s))
		if label == "" {
			label = pfa.StartLabel
		}
		for _, tr := range machine.Transitions(nfa.StateID(s)) {
			edges[label+">"+tr.Symbol] = true
		}
	}
	return edges
}
