// Package core implements pTest's adaptive testing procedure — the
// paper's Algorithm 1. AdaptiveTest generates n test patterns of size s
// from the PFA of the user's service regular expression, merges them
// into one interleaved pattern with the op strategy, and executes the
// result against the co-simulated master–slave platform while the bug
// detector monitors progress. Campaigns repeat the procedure across
// seeds until a failure is found or the budget is spent.
package core

import (
	"fmt"

	"repro/internal/bridge"
	"repro/internal/clock"
	"repro/internal/committee"
	"repro/internal/committer"
	"repro/internal/coverage"
	"repro/internal/detector"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/pattern"
	"repro/internal/pcore"
	"repro/internal/pfa"
	"repro/internal/platform"
	"repro/internal/recording"
	"repro/internal/report"
	"repro/internal/stats"
)

// Config is the full configuration of one adaptive test run: the paper's
// (RE, n, s, op) plus the simulated platform's knobs.
type Config struct {
	// RE is the service regular expression (the paper's RE input).
	RE string
	// PD is the probability distribution attached to the PFA; nil means
	// uniform over legal transitions.
	PD pfa.Distribution
	// N is the number of test patterns to generate — one per logical
	// slave task (Algorithm 1's n).
	N int
	// S is the size of each test pattern (Algorithm 1's s).
	S int
	// Op selects the pattern-merger strategy (Algorithm 1's op).
	Op pattern.Op
	// Seed drives every random choice; a run is reproducible from
	// (Config, Seed) alone.
	Seed uint64
	// Dedup discards replicated patterns before merging (the paper's
	// future-work item on replicated test patterns).
	Dedup bool

	// Gen tunes Algorithm 2's pattern generation (zero value: restart on
	// final dead ends).
	Gen pfa.GenOptions
	// Merge tunes the merger.
	Merge pattern.Options
	// Policy picks priorities for TC/TCH commands; nil uses the default.
	Policy committer.PriorityPolicy

	// CommandGap is the master-side delay (cycles) between consecutive
	// remote commands — the stress density knob (default 10; larger
	// values let slave tasks run further between perturbations).
	CommandGap int

	// Kernel configures the simulated slave (including fault injection).
	Kernel pcore.Config
	// HW configures the simulated SoC.
	HW hw.Config
	// Factory supplies the slave workload bodies; nil uses idle spinners.
	Factory committee.Factory
	// NewFactory, when set, builds a fresh Factory per trial and takes
	// precedence over Factory. Workloads whose factory closes over
	// mutable state (philosopher forks, producer/consumer buffers) must
	// use it for parallel campaigns — and benefit sequentially too, since
	// a fresh factory keeps trials independent of each other.
	NewFactory func() committee.Factory

	// MaxSteps bounds the co-simulation (default 2_000_000 steps).
	MaxSteps int
	// Detector tunes failure detection.
	Detector detector.Options
	// JournalLimit bounds the state-record journal (default 4096).
	JournalLimit int
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 1
	}
	if c.S <= 0 {
		c.S = 8
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 2_000_000
	}
	if c.JournalLimit == 0 {
		c.JournalLimit = 4096
	}
	if c.Gen == (pfa.GenOptions{}) {
		c.Gen = pfa.DefaultGenOptions()
	}
	return c
}

// Outcome is the result of one adaptive test run.
type Outcome struct {
	// Bug is the detected failure, or nil for a clean run.
	Bug *detector.Report
	// Finished reports whether the committer issued the whole pattern.
	Finished bool
	// CommandsIssued counts completed remote commands.
	CommandsIssued int
	// StatusCounts aggregates reply statuses.
	StatusCounts map[bridge.Status]int
	// Coverage summarizes service/transition/interleaving coverage.
	Coverage coverage.Summary
	// Patterns are the generated per-task patterns (T of Algorithm 1).
	Patterns []pfa.Pattern
	// Merged is the final interleaved pattern (M of Algorithm 1).
	Merged pattern.Merged
	// DuplicatesRemoved counts patterns discarded by Dedup.
	DuplicatesRemoved int
	// Journal holds the Definition 2 state records.
	Journal *recording.Journal
	// Duration is the virtual time the run consumed.
	Duration clock.Cycles
	// Steps is the number of co-simulation steps.
	Steps uint64
	// Seed echoes the run's seed for reproduction.
	Seed uint64
}

// AdaptiveTest runs Algorithm 1 once. Structure mirrors the paper's
// pseudocode: PatternGenerator n times, PatternMerger, then the bug
// detector monitoring the committer's execution. (The paper forks the
// detector as a child process; the deterministic co-simulation runs its
// checks interleaved with the platform instead — same observability,
// reproducible schedule.)
func AdaptiveTest(cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	machine, err := pfa.Compile(cfg.RE, cfg.PD)
	if err != nil {
		return nil, fmt.Errorf("core: building PFA: %w", err)
	}
	return adaptiveTest(cfg, machine)
}

// adaptiveTest is AdaptiveTest against an already-compiled machine —
// the campaign engines compile once and run every trial through here.
// cfg must already carry defaults.
func adaptiveTest(cfg Config, machine *pfa.PFA) (*Outcome, error) {
	rng := stats.New(cfg.Seed)

	// T[i] ← PatternGenerator(RE, PD, s), for i in 1..n.
	genRNG := rng.Split()
	var pats []pfa.Pattern
	var err error
	dups := 0
	if cfg.Dedup {
		pats, dups, err = machine.GenerateUnique(genRNG, cfg.N, cfg.S, cfg.Gen, 0)
	} else {
		pats, err = machine.GenerateSet(genRNG, cfg.N, cfg.S, cfg.Gen)
	}
	if err != nil {
		return nil, fmt.Errorf("core: generating patterns: %w", err)
	}

	// M ← PatternMerger(T, n, op).
	sources := make([][]string, len(pats))
	for i, p := range pats {
		sources[i] = p.Symbols
	}
	merged, err := pattern.Merge(sources, cfg.Op, rng.Split(), cfg.Merge)
	if err != nil {
		return nil, fmt.Errorf("core: merging patterns: %w", err)
	}

	out, err := runMerged(cfg, machine, merged)
	if err != nil {
		return nil, err
	}
	out.Patterns = pats
	out.DuplicatesRemoved = dups
	out.Coverage.Transitions = transitionCoverage(machine, out)
	return out, nil
}

// transitionCoverage recomputes the PFA-transition coverage of an
// outcome against the machine that generated its patterns.
func transitionCoverage(machine *pfa.PFA, out *Outcome) float64 {
	track := coverage.GetTracker()
	defer coverage.PutTracker(track)
	for _, e := range out.Merged.Entries[:min(out.CommandsIssued, out.Merged.Len())] {
		track.Observe(e.Task, e.Symbol)
	}
	return track.TransitionCoverage(machine)
}

// RunMerged executes an explicit merged pattern against a fresh platform
// under the bug detector — the execution half of Algorithm 1. The
// CHESS-style baseline uses it to run systematically enumerated
// schedules; AdaptiveTest uses it after generating and merging patterns.
// Pattern- and merge-related Config fields (RE aside, which is still
// used for coverage metrics) are ignored.
func RunMerged(cfg Config, merged pattern.Merged) (*Outcome, error) {
	cfg = cfg.withDefaults()
	machine, err := pfa.Compile(cfg.RE, cfg.PD)
	if err != nil {
		return nil, fmt.Errorf("core: building PFA: %w", err)
	}
	return runMerged(cfg, machine, merged)
}

// RunMergedWith is RunMerged against an already-compiled machine — the
// batch path for systematic explorers that execute many schedules under
// one (RE, PD) and should not re-resolve the cache per schedule.
func RunMergedWith(cfg Config, machine *pfa.PFA, merged pattern.Merged) (*Outcome, error) {
	return runMerged(cfg.withDefaults(), machine, merged)
}

// runMerged is the execution half against an already-compiled machine.
// cfg must already carry defaults.
func runMerged(cfg Config, machine *pfa.PFA, merged pattern.Merged) (*Outcome, error) {
	factory := cfg.Factory
	if cfg.NewFactory != nil {
		factory = cfg.NewFactory()
	}
	plat, err := platform.New(platform.Config{
		HW: cfg.HW, Kernel: cfg.Kernel, Factory: factory,
	})
	if err != nil {
		return nil, fmt.Errorf("core: building platform: %w", err)
	}
	defer plat.Shutdown()

	journal := recording.NewJournal(cfg.JournalLimit)
	cmt := committer.New(plat.Client, merged, cfg.Policy, journal, plat.Now)
	if cfg.CommandGap > 0 {
		cmt.Gap = cfg.CommandGap
	}
	plat.Master.Spawn("committer", cmt.ThreadBody)
	det := detector.New(plat, journal, cfg.Detector)

	// Run until a bug, quiescence, or — for workloads that never quiesce,
	// like control-loop tasks — a settle window after the committer has
	// issued the whole pattern.
	settle := 0
	bug := det.RunUntil(cfg.MaxSteps, func() bool {
		if !cmt.Finished {
			return false
		}
		settle++
		return settle > 64 // 64 check intervals of residual activity
	})

	// Assemble the outcome.
	track := coverage.GetTracker()
	defer coverage.PutTracker(track)
	for _, r := range cmt.Results {
		track.Observe(r.Entry.Task, r.Entry.Symbol)
	}
	out := &Outcome{
		Bug:            bug,
		Finished:       cmt.Finished,
		CommandsIssued: len(cmt.Results),
		StatusCounts:   cmt.StatusCounts(),
		Coverage:       track.Summarize(machine),
		Merged:         merged,
		Journal:        journal,
		Duration:       plat.Now(),
		Steps:          plat.Steps(),
		Seed:           cfg.Seed,
	}
	return out, nil
}

// CampaignConfig repeats AdaptiveTest over consecutive seeds.
type CampaignConfig struct {
	Base Config
	// Trials is the number of runs (default 10).
	Trials int
	// StopOnBug ends the campaign at the first failure (default true
	// via the Run helper; set KeepGoing to scan all trials).
	KeepGoing bool
	// Parallelism shards trials across a worker pool: 0 or 1 runs
	// sequentially, a negative value uses one worker per CPU. Every
	// trial is deterministic in (Base, Base.Seed+index), so the result
	// is bit-identical to the sequential campaign at any setting —
	// including FirstBugTrial under early cancellation. Workloads with
	// stateful factories must set Base.NewFactory.
	Parallelism int
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Trials        int
	Bugs          []*detector.Report
	FirstBugTrial int // 1-based; 0 when no bug found
	TotalCommands int
	TotalDuration clock.Cycles
	CleanFinishes int
	Outcomes      []*Outcome
}

// BugRate returns the fraction of trials that found a failure.
func (r *CampaignResult) BugRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(len(r.Bugs)) / float64(r.Trials)
}

// Summary reduces the campaign to the tool-agnostic machine-readable
// struct suite reports aggregate — the struct counterpart of the
// ptest-run console output. Coverage fields are the mean over trial
// outcomes (pairs: the max any trial observed).
func (r *CampaignResult) Summary() report.CampaignSummary {
	s := report.CampaignSummary{
		Trials:        r.Trials,
		Bugs:          len(r.Bugs),
		BugRate:       r.BugRate(),
		FirstBugTrial: r.FirstBugTrial,
		CleanFinishes: r.CleanFinishes,
		TotalCommands: r.TotalCommands,
		TotalCycles:   uint64(r.TotalDuration),
	}
	if len(r.Bugs) > 0 {
		s.FirstBug = r.Bugs[0].String()
	}
	for _, out := range r.Outcomes {
		s.ServiceCoverage += out.Coverage.Services
		s.TransitionCoverage += out.Coverage.Transitions
		if out.Coverage.Pairs > s.InterleavingPairs {
			s.InterleavingPairs = out.Coverage.Pairs
		}
	}
	if len(r.Outcomes) > 0 {
		s.ServiceCoverage /= float64(len(r.Outcomes))
		s.TransitionCoverage /= float64(len(r.Outcomes))
	}
	return s
}

// RunCampaign executes the trials, varying the seed per trial
// (base.Seed + trial index). Trials are sharded across
// CampaignConfig.Parallelism workers; the PFA compiles once for the
// whole campaign.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 10
	}
	base := cfg.Base.withDefaults()
	machine, err := pfa.Compile(base.RE, base.PD)
	if err != nil {
		return &CampaignResult{}, fmt.Errorf("core: building PFA: %w", err)
	}
	outs, runErr := engine.Run(cfg.Trials, cfg.Parallelism,
		func(i int) (*Outcome, error) {
			run := base
			run.Seed = base.Seed + uint64(i)
			out, err := adaptiveTest(run, machine)
			if err != nil {
				return nil, fmt.Errorf("core: trial %d: %w", i+1, err)
			}
			return out, nil
		},
		func(out *Outcome) bool { return !cfg.KeepGoing && out.Bug != nil })
	return foldCampaign(outs), runErr
}

// foldCampaign aggregates in-order trial outcomes into a result —
// shared by the plain and adaptive campaigns so sequential and parallel
// runs aggregate identically.
func foldCampaign(outs []*Outcome) *CampaignResult {
	res := &CampaignResult{}
	for i, out := range outs {
		res.Trials++
		res.Outcomes = append(res.Outcomes, out)
		res.TotalCommands += out.CommandsIssued
		res.TotalDuration += out.Duration
		if out.Bug != nil {
			res.Bugs = append(res.Bugs, out.Bug)
			if res.FirstBugTrial == 0 {
				res.FirstBugTrial = i + 1
			}
		} else if out.Finished {
			res.CleanFinishes++
		}
	}
	return res
}
