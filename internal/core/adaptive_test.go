package core

import (
	"math"
	"testing"

	"repro/internal/app"
	"repro/internal/pattern"
	"repro/internal/pfa"
)

func TestRefineDistributionValid(t *testing.T) {
	machine, err := pfa.PCore()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{
		"^>TC":    100,
		"TC>TCH":  90,
		"TCH>TCH": 80,
	}
	refined := RefineDistribution(machine, counts, pfa.PCoreDistribution(), 0.5)
	// The refined distribution must build a valid PFA.
	if _, err := pfa.FromRegex(pfa.PCoreRE, refined); err != nil {
		t.Fatal(err)
	}
	// Unexercised siblings must gain probability relative to the base:
	// TC>TCH was hammered, so its refined probability drops below 0.6.
	if refined["TC"]["TCH"] >= 0.6 {
		t.Fatalf("over-exercised edge not damped: %v", refined["TC"]["TCH"])
	}
	if refined["TC"]["TS"] <= 0.1 {
		t.Fatalf("unexercised edge not boosted: %v", refined["TC"]["TS"])
	}
}

func TestRefineAlphaExtremes(t *testing.T) {
	machine, err := pfa.PCore()
	if err != nil {
		t.Fatal(err)
	}
	base := pfa.PCoreDistribution()
	counts := map[string]int{"TC>TCH": 1000}
	// alpha 0: identical to base.
	same := RefineDistribution(machine, counts, base, 0)
	for from, cond := range base {
		for sym, p := range cond {
			if math.Abs(same[from][sym]-p) > 1e-12 {
				t.Fatalf("alpha=0 changed %s>%s: %v vs %v", from, sym, same[from][sym], p)
			}
		}
	}
	// alpha clamped from silly values.
	_ = RefineDistribution(machine, counts, base, -5)
	_ = RefineDistribution(machine, counts, base, 5)
}

func TestRefineSumsToOne(t *testing.T) {
	machine, err := pfa.PCore()
	if err != nil {
		t.Fatal(err)
	}
	refined := RefineDistribution(machine, map[string]int{"TC>TD": 7}, nil, 0.7)
	for from, cond := range refined {
		sum := 0.0
		for _, p := range cond {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("state %s sums to %v", from, sum)
		}
	}
}

func TestAdaptiveCampaignCoverageMonotone(t *testing.T) {
	res, err := RunAdaptiveCampaign(AdaptiveCampaignConfig{
		Base: Config{
			RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
			N: 4, S: 8, Op: pattern.OpRoundRobin, Seed: 30,
			Factory: app.SpinFactory(),
		},
		Trials:    6,
		KeepGoing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 6 {
		t.Fatalf("trials %d", res.Trials)
	}
	if len(res.TransitionCoverage) != 6 {
		t.Fatalf("coverage points %d", len(res.TransitionCoverage))
	}
	prev := 0.0
	for i, c := range res.TransitionCoverage {
		if c < prev {
			t.Fatalf("cumulative coverage dropped at trial %d: %v", i+1, res.TransitionCoverage)
		}
		prev = c
	}
	if res.FinalPD == nil {
		t.Fatal("no final PD")
	}
	if _, err := pfa.FromRegex(pfa.PCoreRE, res.FinalPD); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveReachesFullCoverageFasterThanSkewed(t *testing.T) {
	// Start from a heavily skewed base: the adaptive loop must reach
	// full transition coverage within the trial budget, while the fixed
	// skewed PD does not.
	skewed := pfa.Distribution{
		pfa.StartLabel: {"TC": 1},
		"TC":           {"TCH": 0.997, "TS": 0.001, "TD": 0.001, "TY": 0.001},
		"TCH":          {"TCH": 0.997, "TS": 0.001, "TD": 0.001, "TY": 0.001},
		"TS":           {"TR": 1},
		"TR":           {"TCH": 0.997, "TS": 0.001, "TD": 0.001, "TY": 0.001},
	}
	base := Config{
		RE: pfa.PCoreRE, PD: skewed,
		N: 4, S: 10, Op: pattern.OpRoundRobin, Seed: 3,
		Factory: app.SpinFactory(),
	}
	adaptive, err := RunAdaptiveCampaign(AdaptiveCampaignConfig{
		Base: base, Trials: 8, Alpha: 0.8, KeepGoing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := RunAdaptiveCampaign(AdaptiveCampaignConfig{
		Base: base, Trials: 8, Alpha: NoRefinement, KeepGoing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	aCov := adaptive.TransitionCoverage[len(adaptive.TransitionCoverage)-1]
	fCov := fixed.TransitionCoverage[len(fixed.TransitionCoverage)-1]
	if aCov <= fCov {
		t.Fatalf("adaptive coverage %.3f not above fixed %.3f", aCov, fCov)
	}
}

func TestAdaptiveCampaignStopsOnBug(t *testing.T) {
	res, err := RunAdaptiveCampaign(AdaptiveCampaignConfig{
		Base: Config{
			RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
			N: 12, S: 20, Op: pattern.OpRoundRobin, Seed: 6,
			Factory: app.QuicksortFactory(11),
			Kernel:  kcfgGCLeak(),
		},
		Trials: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) == 0 || res.FirstBugTrial == 0 {
		t.Fatalf("no bug found: %+v", res.CampaignResult)
	}
	if res.Trials != res.FirstBugTrial {
		t.Fatalf("did not stop at first bug: %d vs %d", res.Trials, res.FirstBugTrial)
	}
}
