// ptest compare: diff two suite reports (baseline first) and exit
// non-zero when detection rate or detection latency regressed beyond
// the thresholds — the CI regression gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("ptest compare", flag.ContinueOnError)
	var (
		maxRateDrop = fs.Float64("max-rate-drop", 0,
			"tolerated absolute per-cell bug-rate drop before failing")
		maxLatencyGrowth = fs.Float64("max-latency-growth", 0,
			"tolerated relative growth of a cell's first-bug trial (0.5 = 50%)")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return usagef("compare: want exactly two reports (old new), got %d args — flags must precede the report paths", fs.NArg())
	}
	// A missing or corrupt report is a runtime failure (the suite step
	// that should have produced it broke), not a usage error: exit 1.
	oldR, err := report.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newR, err := report.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	cmp := report.Compare(oldR, newR, report.Thresholds{
		MaxRateDrop:      *maxRateDrop,
		MaxLatencyGrowth: *maxLatencyGrowth,
	})
	cmp.Render(os.Stdout)
	if !cmp.OK() {
		fmt.Printf("compare: %d regression(s) between %s and %s\n",
			len(cmp.Regressions), fs.Arg(0), fs.Arg(1))
		return errFailed
	}
	fmt.Printf("compare: no regressions across %d baseline cell(s)\n", len(oldR.Cells))
	return nil
}
