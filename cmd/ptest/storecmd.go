// ptest store: administration of a content-addressed result store
// directory. `stat` reads the directory without opening it for writing
// (no exclusive flock), so it works alongside a live daemon — and
// reports the live-vs-reclaimable numbers `compact` decides by.
// `compact` opens the store exclusively (it fails loudly if a daemon
// owns the directory) and rewrites the segments down to their live
// entries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"

	"repro/internal/store"
)

func cmdStoreAdmin(args []string) error {
	if len(args) == 0 {
		return usagef("store: missing verb (want stat|compact)")
	}
	verb, args := args[0], args[1:]
	switch verb {
	case "stat":
		return cmdStoreStat(args)
	case "compact":
		return cmdStoreCompact(args)
	}
	return usagef("store: unknown verb %q (want stat|compact)", verb)
}

func cmdStoreStat(args []string) error {
	fs := flag.NewFlagSet("ptest store stat", flag.ContinueOnError)
	var (
		dir     = fs.String("dir", "", "result store directory (required)")
		jsonOut = fs.Bool("json", false, "print the stats as JSON")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dir == "" {
		return usagef("store stat: -dir is required")
	}
	ds, err := store.Stat(*dir)
	if err != nil {
		return err
	}
	if *jsonOut {
		data, err := json.MarshalIndent(ds, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", data)
		return nil
	}
	fmt.Printf("store %s\n", *dir)
	fmt.Printf("segments:     %d (%d bytes on disk)\n", ds.Segments, ds.TotalBytes)
	fmt.Printf("live entries: %d (%d bytes live, %d reclaimable)\n",
		ds.LiveEntries, ds.LiveBytes, ds.TotalBytes-ds.LiveBytes)
	fmt.Printf("lifetime:     %d hits, %d misses, %d puts\n",
		ds.Lifetime.Hits, ds.Lifetime.Misses, ds.Lifetime.Puts)
	if ds.Lifetime.Hits+ds.Lifetime.Misses > 0 {
		fmt.Printf("hit rate:     %.1f%%\n",
			100*float64(ds.Lifetime.Hits)/float64(ds.Lifetime.Hits+ds.Lifetime.Misses))
	}
	return nil
}

func cmdStoreCompact(args []string) error {
	fs := flag.NewFlagSet("ptest store compact", flag.ContinueOnError)
	var (
		dir     = fs.String("dir", "", "result store directory (required)")
		jsonOut = fs.Bool("json", false, "print the compaction result as JSON")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dir == "" {
		return usagef("store compact: -dir is required")
	}
	// Exclusive open: compaction rewrites the log, so unlike stat it must
	// own the directory — a live daemon makes this fail with the usual
	// "is another run/suite/ptestd using this store directory?" hint.
	st, err := store.Open(store.Config{Dir: *dir})
	if err != nil {
		return err
	}
	defer st.Close()
	res, err := st.Compact()
	if err != nil {
		return err
	}
	if *jsonOut {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", data)
		return nil
	}
	fmt.Printf("store %s compacted\n", *dir)
	fmt.Printf("segments: %d -> %d\n", res.SegmentsBefore, res.SegmentsAfter)
	fmt.Printf("bytes:    %d -> %d (%d reclaimed)\n", res.BytesBefore, res.BytesAfter, res.ReclaimedBytes)
	fmt.Printf("live:     %d entries rewritten\n", res.LiveEntries)
	return nil
}
