// ptest store: administration of a content-addressed result store
// directory. `stat` reads the directory without opening it for writing
// (no flock), so it works alongside a live daemon — the numbers
// compaction (the ROADMAP's store GC item) will decide by.
package main

import (
	"encoding/json"
	"flag"
	"fmt"

	"repro/internal/store"
)

func cmdStoreAdmin(args []string) error {
	if len(args) == 0 {
		return usagef("store: missing verb (want stat)")
	}
	verb, args := args[0], args[1:]
	switch verb {
	case "stat":
		return cmdStoreStat(args)
	}
	return usagef("store: unknown verb %q (want stat)", verb)
}

func cmdStoreStat(args []string) error {
	fs := flag.NewFlagSet("ptest store stat", flag.ContinueOnError)
	var (
		dir     = fs.String("dir", "", "result store directory (required)")
		jsonOut = fs.Bool("json", false, "print the stats as JSON")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dir == "" {
		return usagef("store stat: -dir is required")
	}
	ds, err := store.Stat(*dir)
	if err != nil {
		return err
	}
	if *jsonOut {
		data, err := json.MarshalIndent(ds, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", data)
		return nil
	}
	fmt.Printf("store %s\n", *dir)
	fmt.Printf("segments:     %d (%d bytes on disk)\n", ds.Segments, ds.TotalBytes)
	fmt.Printf("live entries: %d (%d bytes live, %d reclaimable)\n",
		ds.LiveEntries, ds.LiveBytes, ds.TotalBytes-ds.LiveBytes)
	fmt.Printf("lifetime:     %d hits, %d misses, %d puts\n",
		ds.Lifetime.Hits, ds.Lifetime.Misses, ds.Lifetime.Puts)
	if ds.Lifetime.Hits+ds.Lifetime.Misses > 0 {
		fmt.Printf("hit rate:     %.1f%%\n",
			100*float64(ds.Lifetime.Hits)/float64(ds.Lifetime.Hits+ds.Lifetime.Misses))
	}
	return nil
}
