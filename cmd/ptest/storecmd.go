// ptest store: administration of a content-addressed result store
// directory. `stat` reads the directory without opening it for writing
// (no exclusive flock), so it works alongside a live daemon — and
// reports the live-vs-reclaimable numbers `compact` decides by.
// `compact` opens the store exclusively (it fails loudly if a daemon
// owns the directory) and rewrites the segments down to their live
// entries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"sort"
	"time"

	"repro/internal/store"
)

func cmdStoreAdmin(args []string) error {
	if len(args) == 0 {
		return usagef("store: missing verb (want stat|compact)")
	}
	verb, args := args[0], args[1:]
	switch verb {
	case "stat":
		return cmdStoreStat(args)
	case "compact":
		return cmdStoreCompact(args)
	}
	return usagef("store: unknown verb %q (want stat|compact)", verb)
}

func cmdStoreStat(args []string) error {
	fs := flag.NewFlagSet("ptest store stat", flag.ContinueOnError)
	var (
		dir         = fs.String("dir", "", "result store directory (required)")
		jsonOut     = fs.Bool("json", false, "print the stats as JSON")
		maxAge      = fs.Duration("max-age", 0, "estimate what a -max-age GC compaction would reclaim")
		maxIdle     = fs.Duration("max-idle", 0, "estimate what a -max-idle GC compaction would reclaim")
		schemaBelow = fs.Int("schema-below", 0, "estimate what a -schema-below GC compaction would reclaim")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dir == "" {
		return usagef("store stat: -dir is required")
	}
	ds, err := store.Stat(*dir)
	if err != nil {
		return err
	}
	pol := store.GCPolicy{MaxAge: *maxAge, MaxIdle: *maxIdle, SchemaBelow: *schemaBelow}
	if !pol.Zero() {
		est := ds.EstimateGC(pol, time.Now())
		ds.GC = &est
	}
	if *jsonOut {
		data, err := json.MarshalIndent(ds, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", data)
		return nil
	}
	fmt.Printf("store %s\n", *dir)
	fmt.Printf("segments:     %d (%d bytes on disk)\n", ds.Segments, ds.TotalBytes)
	fmt.Printf("live entries: %d (%d bytes live, %d reclaimable)\n",
		ds.LiveEntries, ds.LiveBytes, ds.TotalBytes-ds.LiveBytes)
	fmt.Printf("records:      %d v2, %d v1 (legacy; a compaction migrates them)\n", ds.V2Records, ds.V1Records)
	if len(ds.SchemaCounts) > 0 {
		schemas := make([]int, 0, len(ds.SchemaCounts))
		for sv := range ds.SchemaCounts {
			schemas = append(schemas, sv)
		}
		sort.Ints(schemas)
		fmt.Printf("schemas:     ")
		for _, sv := range schemas {
			fmt.Printf(" %d×schema%d", ds.SchemaCounts[sv], sv)
		}
		fmt.Println()
	}
	fmt.Printf("lifetime:     %d hits, %d misses, %d puts\n",
		ds.Lifetime.Hits, ds.Lifetime.Misses, ds.Lifetime.Puts)
	if ds.Lifetime.Hits+ds.Lifetime.Misses > 0 {
		fmt.Printf("hit rate:     %.1f%%\n",
			100*float64(ds.Lifetime.Hits)/float64(ds.Lifetime.Hits+ds.Lifetime.Misses))
	}
	if ds.GC != nil {
		fmt.Printf("gc estimate:  %d entries (%d bytes) would expire under this policy\n",
			ds.GC.Entries, ds.GC.Bytes)
	}
	return nil
}

func cmdStoreCompact(args []string) error {
	fs := flag.NewFlagSet("ptest store compact", flag.ContinueOnError)
	var (
		dir         = fs.String("dir", "", "result store directory (required)")
		jsonOut     = fs.Bool("json", false, "print the compaction result as JSON")
		maxAge      = fs.Duration("max-age", 0, "GC: expire entries created longer ago than this (0 = keep forever; v1 records exempt until migrated)")
		maxIdle     = fs.Duration("max-idle", 0, "GC: expire entries not hit for this long (0 = keep forever; v1 records exempt until migrated)")
		schemaBelow = fs.Int("schema-below", 0, "GC: expire entries whose record schema is below this (v1 records count as schema 0)")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dir == "" {
		return usagef("store compact: -dir is required")
	}
	// Exclusive open: compaction rewrites the log, so unlike stat it must
	// own the directory — a live daemon makes this fail with the usual
	// "is another run/suite/ptestd using this store directory?" hint.
	st, err := store.Open(store.Config{Dir: *dir})
	if err != nil {
		return err
	}
	defer st.Close()
	res, err := st.CompactPolicy(store.GCPolicy{
		MaxAge: *maxAge, MaxIdle: *maxIdle, SchemaBelow: *schemaBelow,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", data)
		return nil
	}
	fmt.Printf("store %s compacted\n", *dir)
	fmt.Printf("segments: %d -> %d\n", res.SegmentsBefore, res.SegmentsAfter)
	fmt.Printf("bytes:    %d -> %d (%d reclaimed)\n", res.BytesBefore, res.BytesAfter, res.ReclaimedBytes)
	fmt.Printf("live:     %d entries rewritten\n", res.LiveEntries)
	if res.ExpiredEntries > 0 {
		fmt.Printf("expired:  %d entries (%d bytes) removed by the GC policy\n", res.ExpiredEntries, res.ExpiredBytes)
	}
	if res.MigratedRecords > 0 {
		fmt.Printf("migrated: %d v1 records rewritten as v2\n", res.MigratedRecords)
	}
	return nil
}
