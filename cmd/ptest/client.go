// ptest client: talk to a running ptestd. Seven verbs, shared -server
// and -api-key flags, the usual single validation-error path:
//
//	ptest client submit  -spec sweep.json [-priority 5] [-wait]
//	ptest client status  [job-id]
//	ptest client watch   <job-id>
//	ptest client report  <job-id> [-canonical] [-out report.json]
//	ptest client cancel  <job-id>
//	ptest client workers
//	ptest client events  [-follow] [-since N] [-type t] [-job id] [-tenant name]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/eventlog"
	"repro/internal/report"
	"repro/internal/server"
)

const defaultServer = "http://127.0.0.1:8321"

func cmdClient(args []string) error {
	if len(args) == 0 {
		return usagef("client: want submit|status|watch|report|cancel|workers|events")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "submit":
		return clientSubmit(rest)
	case "status":
		return clientStatus(rest)
	case "watch":
		return clientWatch(rest)
	case "report":
		return clientReport(rest)
	case "cancel":
		return clientCancel(rest)
	case "workers":
		return clientWorkers(rest)
	case "events":
		return clientEvents(rest)
	}
	return usagef("client: unknown verb %q (want submit|status|watch|report|cancel|workers|events)", verb)
}

// clientConn registers the shared -server and -api-key flags and
// returns a constructor for the configured client; credentials attach
// via server.WithAPIKey only when a key was actually supplied, so an
// anonymous hub sees byte-identical requests.
func clientConn(fs *flag.FlagSet) func() *server.Client {
	srv := fs.String("server", defaultServer, "ptestd base URL")
	key := apiKeyFlag(fs)
	return func() *server.Client {
		var opts []server.ClientOption
		if *key != "" {
			opts = append(opts, server.WithAPIKey(*key))
		}
		return server.NewClient(*srv, opts...)
	}
}

func clientSubmit(args []string) error {
	fs := flag.NewFlagSet("ptest client submit", flag.ContinueOnError)
	conn := clientConn(fs)
	var (
		specPath = fs.String("spec", "", "suite spec JSON file (required)")
		priority = fs.Int("priority", 0, "queue priority (higher runs first)")
		wait     = fs.Bool("wait", false, "stream progress and wait for the job to finish")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *specPath == "" {
		return usagef("client submit: -spec is required")
	}
	f, err := os.Open(*specPath)
	if err != nil {
		return usageError{err}
	}
	defer f.Close()

	cli := conn()
	info, err := cli.Submit(context.Background(), f, *priority)
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s: suite %s, %d cells, status %s\n",
		info.ID, info.Suite, info.TotalCells, info.Status)
	if !*wait {
		return nil
	}
	return watchJob(cli, info.ID)
}

func clientStatus(args []string) error {
	fs := flag.NewFlagSet("ptest client status", flag.ContinueOnError)
	conn := clientConn(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	cli := conn()
	if fs.NArg() > 1 {
		return usagef("client status: want at most one job id")
	}
	if fs.NArg() == 1 {
		info, err := cli.Job(context.Background(), fs.Arg(0))
		if err != nil {
			return err
		}
		printJob(info)
		return nil
	}
	jobs, err := cli.Jobs(context.Background())
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	for _, info := range jobs {
		printJob(info)
	}
	return nil
}

func printJob(info server.JobInfo) {
	extra := ""
	if info.Status == server.JobRunning || info.Status.Terminal() {
		extra = fmt.Sprintf("  %d/%d cells", info.DoneCells, info.TotalCells)
		if info.StoreHits > 0 {
			extra += fmt.Sprintf(" (%d cached)", info.StoreHits)
		}
	}
	if info.Error != "" {
		extra += "  error: " + info.Error
	}
	fmt.Printf("%s  %-9s  prio=%d  %s%s\n", info.ID, info.Status, info.Priority, info.Suite, extra)
}

func clientWatch(args []string) error {
	fs := flag.NewFlagSet("ptest client watch", flag.ContinueOnError)
	conn := clientConn(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("client watch: want exactly one job id")
	}
	return watchJob(conn(), fs.Arg(0))
}

// watchJob streams plan-order cell completions and reports the terminal
// status; a failed/cancelled job exits 1 like a failed local run.
func watchJob(cli *server.Client, id string) error {
	final, err := cli.Watch(context.Background(), id, func(c report.Cell) {
		verdict := "clean"
		if c.Summary.Bugs > 0 {
			verdict = fmt.Sprintf("%d/%d bugs (first at trial %d)",
				c.Summary.Bugs, c.Summary.Trials, c.Summary.FirstBugTrial)
		}
		fmt.Printf("cell %-45s %s\n", c.ID, verdict)
	})
	if err != nil {
		return err
	}
	fmt.Printf("job %s: %s, %d/%d cells (%d cached, %d executed)\n",
		final.ID, final.Status, final.DoneCells, final.TotalCells,
		final.StoreHits, final.CellsExecuted)
	if final.Status != server.JobDone {
		return errFailed
	}
	return nil
}

func clientReport(args []string) error {
	fs := flag.NewFlagSet("ptest client report", flag.ContinueOnError)
	conn := clientConn(fs)
	var (
		canonical = fs.Bool("canonical", false, "fetch the canonical (timing-zeroed) report")
		outPath   = fs.String("out", "", "write the report here (default: stdout)")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("client report: want exactly one job id")
	}
	raw, err := conn().ReportBytes(context.Background(), fs.Arg(0), *canonical)
	if err != nil {
		return err
	}
	if *outPath == "" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(*outPath, raw, 0o644)
}

// clientWorkers lists the hub's fleet: who is registered, who is live,
// what they hold and what they have finished.
func clientWorkers(args []string) error {
	fs := flag.NewFlagSet("ptest client workers", flag.ContinueOnError)
	conn := clientConn(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("client workers: no arguments")
	}
	workers, err := conn().Workers(context.Background())
	if err != nil {
		return err
	}
	if len(workers) == 0 {
		fmt.Println("no workers registered (jobs run in-process on the hub)")
		return nil
	}
	for _, wk := range workers {
		state := "live"
		if !wk.Live {
			state = "expired"
		}
		// batch is the worker's live lease:batch depth; a v1 single-lease
		// worker never batches, so it renders as "-".
		batch := "-"
		if wk.LastBatch > 0 {
			batch = fmt.Sprintf("%d", wk.LastBatch)
		}
		fmt.Printf("%s  %-8s  %-20s  in-flight=%d  batch=%s  completed=%d  last-seen=%dms ago\n",
			wk.ID, state, wk.Name, wk.InFlight, batch, wk.Completed, wk.LastSeenAgoMS)
	}
	return nil
}

// clientEvents tails the fleet event log as JSONL on stdout — one event
// per line, exactly as the server recorded it, so the output pipes
// straight into jq or a file. Without -follow it prints the buffered
// backlog and exits; with -follow it streams live events over SSE,
// reconnecting with Last-Event-ID so nothing is seen twice.
func clientEvents(args []string) error {
	fs := flag.NewFlagSet("ptest client events", flag.ContinueOnError)
	conn := clientConn(fs)
	var (
		follow = fs.Bool("follow", false, "stay connected and stream live events (SSE)")
		since  = fs.Uint64("since", 0, "skip events with sequence <= N")
		typ    = fs.String("type", "", "filter by event type (exact or dot-prefix: `lease` matches lease.granted)")
		jobID  = fs.String("job", "", "filter by job id")
		tnt    = fs.String("tenant", "", "filter by tenant name")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("client events: no arguments (use flags to filter)")
	}
	f := server.EventsFilter{Type: *typ, Job: *jobID, Tenant: *tnt, Since: *since}
	enc := json.NewEncoder(os.Stdout)
	emit := func(e eventlog.Event) { _ = enc.Encode(e) }
	cli := conn()
	if *follow {
		return cli.TailEvents(context.Background(), f, emit)
	}
	page, err := cli.Events(context.Background(), f)
	if err != nil {
		return err
	}
	for _, e := range page.Events {
		emit(e)
	}
	if page.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "note: ring has dropped %d events; oldest shown is seq %d\n",
			page.Dropped, firstSeq(page.Events))
	}
	return nil
}

func firstSeq(evs []eventlog.Event) uint64 {
	if len(evs) == 0 {
		return 0
	}
	return evs[0].Seq
}

func clientCancel(args []string) error {
	fs := flag.NewFlagSet("ptest client cancel", flag.ContinueOnError)
	conn := clientConn(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("client cancel: want exactly one job id")
	}
	info, err := conn().Cancel(context.Background(), fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("job %s: %s\n", info.ID, info.Status)
	return nil
}
