package main

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/report"
	"repro/internal/store"
)

func wantUsageError(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("want usage error, got nil")
	}
	if !errors.As(err, &usageError{}) {
		t.Fatalf("want usageError (exit 2), got %T: %v", err, err)
	}
}

func TestRunValidationRoutesThroughUsageError(t *testing.T) {
	// Every bad-input shape lands on the same error path.
	wantUsageError(t, cmdRun(nil))                                           // no -re/-pcore
	wantUsageError(t, cmdRun([]string{"-pcore", "-workload", "nosuch"}))     // unknown workload
	wantUsageError(t, cmdRun([]string{"-pcore", "-op", "bogus"}))            // unknown merge op
	wantUsageError(t, cmdRun([]string{"-pcore", "-pd", "garbage"}))          // bad PD syntax
	wantUsageError(t, cmdRun([]string{"-no-such-flag"}))                     // flag parse error
	wantUsageError(t, cmdSuite(nil))                                         // missing -spec
	wantUsageError(t, cmdSuite([]string{"-spec", "/nonexistent/spec.json"})) // unreadable spec
	wantUsageError(t, cmdCompare([]string{"only-one.json"}))                 // wrong arity
	wantUsageError(t, cmdServe([]string{"-queue", "0"}))                     // unbounded queue
	wantUsageError(t, cmdClient(nil))                                        // missing verb
	wantUsageError(t, cmdClient([]string{"bogus"}))                          // unknown verb
	wantUsageError(t, cmdClient([]string{"submit"}))                         // missing -spec
	wantUsageError(t, cmdClient([]string{"submit", "-spec", "/nonexistent/spec.json"}))
	wantUsageError(t, cmdClient([]string{"watch"}))                                        // missing job id
	wantUsageError(t, cmdClient([]string{"report", "a", "b"}))                             // wrong arity
	wantUsageError(t, cmdClient([]string{"cancel"}))                                       // missing job id
	wantUsageError(t, cmdRun([]string{"-pcore", "-store", "x", "-dump-journal"}))          // store vs journal
	wantUsageError(t, cmdStoreAdmin(nil))                                                  // missing verb
	wantUsageError(t, cmdStoreAdmin([]string{"bogus"}))                                    // unknown verb
	wantUsageError(t, cmdStoreAdmin([]string{"compact"}))                                  // missing -dir
	wantUsageError(t, cmdRun([]string{"-pcore", "-store", "a", "-store-url", "http://b"})) // mutually exclusive
	wantUsageError(t, cmdServe([]string{"-store-autocompact", "1"}))                       // autocompact needs -store
}

func TestHelpRequestIsNotAnError(t *testing.T) {
	err := cmdRun([]string{"-h"})
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("want flag.ErrHelp, got %v", err)
	}
	if errors.As(err, &usageError{}) {
		t.Fatal("help request classified as usage error (would exit 2)")
	}
}

func TestRunCleanWorkloadSucceeds(t *testing.T) {
	if err := cmdRun([]string{"-pcore", "-n", "2", "-s", "4", "-json"}); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
}

func TestRunFaultyWorkloadExitsFailed(t *testing.T) {
	err := cmdRun([]string{"-pcore", "-n", "8", "-s", "16", "-workload", "quicksort",
		"-gc-leak-every", "2", "-trials", "3", "-json"})
	if !errors.Is(err, errFailed) {
		t.Fatalf("want errFailed (exit 1), got %v", err)
	}
}

func TestRunViaStoreCachesAcrossInvocations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	args := []string{"-pcore", "-n", "8", "-s", "16", "-workload", "quicksort",
		"-gc-leak-every", "2", "-trials", "2", "-keep-going", "-json", "-store", dir}
	// Cold: executes and stores; the faulty workload exits 1.
	if err := cmdRun(args); !errors.Is(err, errFailed) {
		t.Fatalf("cold run: want errFailed, got %v", err)
	}
	// Warm: the cached cell must reproduce the verdict without executing.
	if err := cmdRun(args); !errors.Is(err, errFailed) {
		t.Fatalf("warm run: want errFailed, got %v", err)
	}
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Stats(); got.DiskEntries != 1 {
		t.Fatalf("two identical runs stored %d cells, want 1", got.DiskEntries)
	}
}

func TestStoreCompactCLIKeepsWarmReplay(t *testing.T) {
	// The CLI acceptance loop: run with -store, `ptest store compact`,
	// run again — the warm run is served entirely from the compacted
	// store and stat shows zero reclaimable bytes.
	dir := filepath.Join(t.TempDir(), "store")
	args := []string{"-pcore", "-n", "8", "-s", "16", "-workload", "quicksort",
		"-gc-leak-every", "2", "-trials", "2", "-keep-going", "-json", "-store", dir}
	if err := cmdRun(args); !errors.Is(err, errFailed) {
		t.Fatalf("cold run: want errFailed, got %v", err)
	}
	if err := cmdStoreAdmin([]string{"compact", "-dir", dir, "-json"}); err != nil {
		t.Fatalf("store compact: %v", err)
	}
	ds, err := store.Stat(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.LiveEntries != 1 || ds.TotalBytes != ds.LiveBytes {
		t.Fatalf("stat after compact: %+v (want 1 live entry, 0 reclaimable)", ds)
	}
	if err := cmdRun(args); !errors.Is(err, errFailed) {
		t.Fatalf("warm run after compact: want errFailed (cached verdict), got %v", err)
	}
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Stats(); got.DiskEntries != 1 {
		t.Fatalf("store grew across compact+warm run: %+v", got)
	}
}

func writeReport(t *testing.T, dir, name string, rate float64) string {
	t.Helper()
	r := &report.Report{
		SchemaVersion: report.SchemaVersion,
		Suite:         "t",
		Cells: []report.Cell{{
			ID: "w/c", Workload: "w", Tool: "adaptive", N: 1,
			Summary: report.CampaignSummary{Trials: 10, BugRate: rate},
		}},
	}
	r.Aggregate()
	path := filepath.Join(dir, name)
	if err := report.WriteFile(path, r); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", 0.5)
	same := writeReport(t, dir, "same.json", 0.5)
	worse := writeReport(t, dir, "worse.json", 0.2)

	if err := cmdCompare([]string{base, same}); err != nil {
		t.Fatalf("identical reports must pass: %v", err)
	}
	if err := cmdCompare([]string{base, worse}); !errors.Is(err, errFailed) {
		t.Fatalf("regression must exit non-zero, got %v", err)
	}
	// A threshold wide enough to absorb the drop passes the gate.
	if err := cmdCompare([]string{"-max-rate-drop", "0.4", base, worse}); err != nil {
		t.Fatalf("drop within threshold must pass: %v", err)
	}
}

func TestSuiteEndToEnd(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	specJSON := `{
		"name": "cli-e2e",
		"trials": 1,
		"max_steps": 100000,
		"workloads": [{"name": "spin"}],
		"ops": ["roundrobin"],
		"points": [{"n": 2, "s": 4}],
		"tools": [{"name": "adaptive"}]
	}`
	if err := os.WriteFile(spec, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "report.json")
	if err := cmdSuite([]string{"-quiet", "-spec", spec, "-out", out, "-canonical"}); err != nil {
		t.Fatal(err)
	}
	rep, err := report.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 || rep.Cells[0].Tool != "adaptive" {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.WallMS != 0 {
		t.Fatal("-canonical left timing fields")
	}
	// The fresh report compared against itself passes the gate.
	if err := cmdCompare([]string{out, out}); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
}
