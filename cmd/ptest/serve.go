// ptest serve: run ptestd, the campaign job server. Suite specs arrive
// over HTTP, queue on a bounded priority queue, execute on the shared
// campaign engine, and memoize every cell in the content-addressed
// result store; SIGTERM/SIGINT drains gracefully (running jobs finish,
// queued ones are cancelled, nothing dies mid-write).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// openStoreFlag builds the store shared by serve, suite and run behind
// the CellStore seam: a remote client when -store-url names a serving
// ptestd, a disk-backed local store when -store names a directory,
// memory-only otherwise.
func openStoreFlag(cfg store.Config, remoteURL string) (store.CellStore, error) {
	if remoteURL != "" {
		if cfg.Dir != "" {
			return nil, usagef("-store and -store-url are mutually exclusive")
		}
		return store.OpenRemote(store.RemoteConfig{BaseURL: remoteURL, MemEntries: cfg.MemEntries})
	}
	return store.Open(cfg)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("ptest serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8321", "listen address")
		workers  = fs.Int("workers", 0, "concurrent jobs (0 = one per CPU)")
		queueCap = fs.Int("queue", 64, "job queue capacity (submissions past it get 503)")
		maxJobs  = fs.Int("max-jobs", 512, "retained job records (oldest finished jobs pruned past this)")
		storeDir = fs.String("store", "", "result-store directory (empty: memory-only, lost on exit)")
		storeURL = fs.String("store-url", "", "share another ptestd's store instead of owning one (fleet worker mode; mutually exclusive with -store)")
		storeMem = fs.Int("store-mem", 4096, "result-store in-memory LRU entries")
		autoGC   = fs.Int64("store-autocompact", 0, "background-compact the local store when reclaimable bytes exceed this (0 = off)")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *queueCap <= 0 {
		return usagef("serve: -queue must be positive")
	}

	if *autoGC > 0 && *storeDir == "" {
		return usagef("serve: -store-autocompact needs a local -store directory")
	}
	st, err := openStoreFlag(store.Config{
		Dir: *storeDir, MemEntries: *storeMem, AutoCompactMinBytes: *autoGC,
	}, *storeURL)
	if err != nil {
		return err
	}
	defer st.Close()

	srv, err := server.New(server.Config{
		Workers: *workers, QueueCap: *queueCap, MaxJobs: *maxJobs, Store: st,
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	defer close(done)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		select {
		case <-sigc:
			// Release the handler: a second signal kills a stuck drain.
			signal.Stop(sigc)
			fmt.Fprintln(os.Stderr, "ptestd: draining (running jobs finish, queued jobs cancel; signal again to abort hard)")
			shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(shutCtx)
		case <-done:
		}
	}()

	srv.Start()
	fmt.Fprintf(os.Stderr, "ptestd: listening on %s (workers=%d queue=%d store=%s)\n",
		*addr, *workers, *queueCap, storeDesc(*storeDir, *storeURL))
	err = httpSrv.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.Drain()
	fmt.Fprintln(os.Stderr, "ptestd: drained")
	return nil
}

func storeDesc(dir, remoteURL string) string {
	switch {
	case remoteURL != "":
		return "remote " + remoteURL
	case dir != "":
		return dir
	}
	return "memory"
}
