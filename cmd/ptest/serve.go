// ptest serve: run ptestd, the campaign job server. Suite specs arrive
// over HTTP, queue on a bounded priority queue, execute on the shared
// campaign engine, and memoize every cell in the content-addressed
// result store; SIGTERM/SIGINT drains gracefully (running jobs finish,
// queued ones are cancelled, nothing dies mid-write).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// openStoreFlag builds the store shared by serve, suite and run: a
// disk-backed one when -store names a directory, memory-only otherwise.
func openStoreFlag(dir string, memEntries int) (*store.Store, error) {
	return store.Open(store.Config{Dir: dir, MemEntries: memEntries})
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("ptest serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8321", "listen address")
		workers  = fs.Int("workers", 0, "concurrent jobs (0 = one per CPU)")
		queueCap = fs.Int("queue", 64, "job queue capacity (submissions past it get 503)")
		maxJobs  = fs.Int("max-jobs", 512, "retained job records (oldest finished jobs pruned past this)")
		storeDir = fs.String("store", "", "result-store directory (empty: memory-only, lost on exit)")
		storeMem = fs.Int("store-mem", 4096, "result-store in-memory LRU entries")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *queueCap <= 0 {
		return usagef("serve: -queue must be positive")
	}

	st, err := openStoreFlag(*storeDir, *storeMem)
	if err != nil {
		return err
	}
	defer st.Close()

	srv, err := server.New(server.Config{
		Workers: *workers, QueueCap: *queueCap, MaxJobs: *maxJobs, Store: st,
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	defer close(done)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		select {
		case <-sigc:
			// Release the handler: a second signal kills a stuck drain.
			signal.Stop(sigc)
			fmt.Fprintln(os.Stderr, "ptestd: draining (running jobs finish, queued jobs cancel; signal again to abort hard)")
			shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(shutCtx)
		case <-done:
		}
	}()

	srv.Start()
	fmt.Fprintf(os.Stderr, "ptestd: listening on %s (workers=%d queue=%d store=%s)\n",
		*addr, *workers, *queueCap, storeDesc(*storeDir))
	err = httpSrv.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.Drain()
	fmt.Fprintln(os.Stderr, "ptestd: drained")
	return nil
}

func storeDesc(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
