// ptest serve: run ptestd, the campaign job server. Suite specs arrive
// over HTTP, queue on a bounded priority queue, execute on the shared
// campaign engine, and memoize every cell in the content-addressed
// result store; SIGTERM/SIGINT drains gracefully (running jobs finish,
// queued ones are cancelled, nothing dies mid-write).
//
// With -hub-url the same subcommand becomes a fleet worker instead: no
// listener, no queue — it registers with the hub ptestd, heartbeats,
// leases cells, executes them, and posts completions. SIGTERM finishes
// in-flight cells and deregisters; a worker that simply dies is
// recovered by the hub's lease expiry.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dispatch"
	"repro/internal/eventlog"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tenant"
)

// openStoreFlag builds the store shared by serve, suite and run behind
// the CellStore seam: a remote client when -store-url names a serving
// ptestd (a sharded client when it names several, comma-separated), a
// disk-backed local store when -store names a directory, memory-only
// otherwise. apiKey authenticates the remote path against a hub
// running -auth-keys; batch enables write-through batching (cells per
// flush, 0 = synchronous single puts) and hedge enables hedged reads
// across shards (0 = off, single-URL ignores it).
func openStoreFlag(cfg store.Config, remoteURL, apiKey string, batch int, hedge time.Duration) (store.CellStore, error) {
	if remoteURL == "" {
		return store.Open(cfg)
	}
	if cfg.Dir != "" {
		return nil, usagef("-store and -store-url are mutually exclusive")
	}
	var urls []string
	for _, u := range strings.Split(remoteURL, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return nil, usagef("-store-url: no URLs in %q", remoteURL)
	}
	if len(urls) == 1 {
		return store.OpenRemote(store.RemoteConfig{
			BaseURL: urls[0], MemEntries: cfg.MemEntries, APIKey: apiKey, BatchSize: batch,
		})
	}
	return store.OpenSharded(store.ShardedConfig{
		BaseURLs: urls, MemEntries: cfg.MemEntries, APIKey: apiKey,
		BatchSize: batch, HedgeAfter: hedge,
	})
}

// apiKeyFlag registers the shared -api-key flag; $PTEST_API_KEY is the
// default so shared-hub credentials stay out of shell history.
func apiKeyFlag(fs *flag.FlagSet) *string {
	return fs.String("api-key", os.Getenv("PTEST_API_KEY"),
		"API key for a ptestd running -auth-keys (default: $PTEST_API_KEY)")
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("ptest serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8321", "listen address")
		workers  = fs.Int("workers", 0, "concurrent jobs (0 = one per CPU)")
		queueCap = fs.Int("queue", 64, "job queue capacity (submissions past it get 503)")
		maxJobs  = fs.Int("max-jobs", 512, "retained job records (oldest finished jobs pruned past this)")
		storeDir = fs.String("store", "", "result-store directory (empty: memory-only, lost on exit)")
		storeURL = fs.String("store-url", "", "share another ptestd's store instead of owning one; comma-separate several URLs for a sharded hub tier (mutually exclusive with -store)")
		storeMem = fs.Int("store-mem", 4096, "result-store in-memory LRU entries")
		autoGC   = fs.Int64("store-autocompact", 0, "background-compact the local store when reclaimable bytes exceed this (0 = off)")

		storeBatch   = fs.Int("store-batch", 16, "coalesce remote store writes into batches of this many cells (0 = one PUT per cell; -store-url only)")
		storeHedge   = fs.Duration("store-hedge", 0, "hedge slow sharded-store reads to the second-ranked hub after this long (0 = off; multi-URL -store-url only)")
		storeMaxAge  = fs.Duration("store-max-age", 0, "GC: expire store entries older than this on autocompaction (needs -store-autocompact)")
		storeMaxIdle = fs.Duration("store-max-idle", 0, "GC: expire store entries not hit for this long on autocompaction (needs -store-autocompact)")
		hubURL       = fs.String("hub-url", "", "join a hub ptestd's fleet as a cell worker instead of serving (no listener)")
		hubName      = fs.String("name", "", "worker name shown by `ptest client workers` (default: hostname; -hub-url only)")
		leaseBatch   = fs.Int("lease-batch", 0, "cells leased per hub round trip (0 = auto from -workers; negative = v1 single-lease wire; -hub-url only)")
		leaseLinger  = fs.Duration("complete-linger", 0, "longest a finished cell waits to share a completion round trip (0 = 100ms default; -hub-url only)")

		eventsCap = fs.Int("events", 0, "fleet event-log ring capacity; enables /api/v1/events and event emission (0 = off)")
		eventsLog = fs.String("events-log", "", "append every event as JSONL to this file (needs -events)")

		authKeys    = fs.String("auth-keys", "", "keyfile of `key tenant role` lines; set to require auth on /api/v1 (empty: anonymous mode)")
		submitRate  = fs.Float64("submit-rate", 0, "per-tenant job submissions per second (0 = unlimited)")
		submitBurst = fs.Int("submit-burst", 1, "per-tenant submission burst (with -submit-rate)")
		cellsRate   = fs.Float64("cells-rate", 0, "per-tenant cells requests per second (0 = unlimited)")
		cellsBurst  = fs.Int("cells-burst", 1, "per-tenant cells burst (with -cells-rate)")
		maxInflight = fs.Int("max-inflight", 0, "per-tenant concurrently running jobs (0 = uncapped; admins exempt)")
		maxQueued   = fs.Int("max-queued", 0, "per-tenant queued-job backlog (0 = uncapped; admins exempt)")
		apiKey      = apiKeyFlag(fs)
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *hubURL != "" {
		// Worker mode executes leased cells for the hub; it owns no
		// listener, queue, or store, so the server-side flags make no
		// sense here — reject any that were set explicitly.
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "addr", "queue", "max-jobs", "store", "store-url", "store-mem", "store-autocompact",
				"store-batch", "store-hedge", "store-max-age", "store-max-idle",
				"events", "events-log",
				"auth-keys", "submit-rate", "submit-burst", "cells-rate", "cells-burst", "max-inflight", "max-queued":
				conflict = f.Name
			}
		})
		if conflict != "" {
			return usagef("serve: -%s does not apply in -hub-url worker mode", conflict)
		}
		return serveWorker(*hubURL, *hubName, *workers, *apiKey, *leaseBatch, *leaseLinger)
	}
	if *hubName != "" {
		return usagef("serve: -name only applies with -hub-url")
	}
	if *leaseBatch != 0 {
		return usagef("serve: -lease-batch only applies with -hub-url")
	}
	if *leaseLinger != 0 {
		return usagef("serve: -complete-linger only applies with -hub-url")
	}
	if *queueCap <= 0 {
		return usagef("serve: -queue must be positive")
	}

	if *autoGC > 0 && *storeDir == "" {
		return usagef("serve: -store-autocompact needs a local -store directory")
	}
	if (*storeMaxAge > 0 || *storeMaxIdle > 0) && *autoGC <= 0 {
		// The GC policy only runs when a compaction pass runs; without
		// autocompaction nothing would ever apply it, which reads like
		// retention but isn't.
		return usagef("serve: -store-max-age/-store-max-idle need -store-autocompact")
	}
	tenancy := tenant.Config{
		SubmitRate: *submitRate, SubmitBurst: *submitBurst,
		CellsRate: *cellsRate, CellsBurst: *cellsBurst,
		MaxInFlight: *maxInflight, MaxQueued: *maxQueued,
	}
	if *authKeys != "" {
		keys, err := tenant.LoadKeyfile(*authKeys)
		if err != nil {
			return fmt.Errorf("serve: -auth-keys: %w", err)
		}
		tenancy.Keys = keys
	}
	// Event log: off by default (the daemon stays byte-identical to a
	// build without it); -events N buys a bounded ring plus the
	// /api/v1/events endpoint, and -events-log additionally appends
	// every event as a JSONL audit trail.
	var rec *eventlog.Recorder
	if *eventsLog != "" && *eventsCap <= 0 {
		return usagef("serve: -events-log needs -events")
	}
	if *eventsCap > 0 {
		ecfg := eventlog.Config{Capacity: *eventsCap}
		if *eventsLog != "" {
			// Replay an existing JSONL trail into the ring before appending
			// to it: the daemon restarts with its recent history visible on
			// /api/v1/events, and sequence ids continue past the old file's
			// highest — a watcher's Last-Event-ID survives the restart.
			if prev, err := os.Open(*eventsLog); err == nil {
				ecfg.Replay = eventlog.ReadJSONL(prev)
				_ = prev.Close()
			}
			f, err := os.OpenFile(*eventsLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("serve: -events-log: %w", err)
			}
			defer f.Close()
			ecfg.Sink = f
		}
		rec = eventlog.New(ecfg)
	}

	st, err := openStoreFlag(store.Config{
		Dir: *storeDir, MemEntries: *storeMem, AutoCompactMinBytes: *autoGC,
		GC: store.GCPolicy{MaxAge: *storeMaxAge, MaxIdle: *storeMaxIdle},
	}, *storeURL, *apiKey, *storeBatch, *storeHedge)
	if err != nil {
		return err
	}
	defer st.Close()

	srv, err := server.New(server.Config{
		Workers: *workers, QueueCap: *queueCap, MaxJobs: *maxJobs, Store: st,
		Tenancy: tenancy, Events: rec,
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	defer close(done)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		select {
		case <-sigc:
			// Release the handler: a second signal kills a stuck drain.
			signal.Stop(sigc)
			fmt.Fprintln(os.Stderr, "ptestd: draining (running jobs finish, queued jobs cancel; signal again to abort hard)")
			shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(shutCtx)
		case <-done:
		}
	}()

	auth := "anonymous"
	if len(tenancy.Keys) > 0 {
		auth = fmt.Sprintf("enforced (%d keys)", len(tenancy.Keys))
	}
	obs := "off"
	if rec != nil {
		obs = fmt.Sprintf("ring %d", *eventsCap)
	}
	srv.Start()
	fmt.Fprintf(os.Stderr, "ptestd: listening on %s (workers=%d queue=%d store=%s auth=%s events=%s); dashboard at http://%s/ui\n",
		*addr, *workers, *queueCap, storeDesc(*storeDir, *storeURL), auth, obs, *addr)
	err = httpSrv.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.Drain()
	fmt.Fprintln(os.Stderr, "ptestd: drained")
	return nil
}

// serveWorker is `ptest serve -hub-url`: one fleet worker process.
// Graceful shutdown (SIGTERM/SIGINT) finishes the cells it holds and
// deregisters; the hub recovers anything less graceful via lease
// expiry.
func serveWorker(hubURL, name string, parallel int, apiKey string, leaseBatch int, linger time.Duration) error {
	w, err := dispatch.NewWorker(dispatch.WorkerConfig{
		HubURL:         hubURL,
		Name:           name,
		Parallelism:    parallel,
		APIKey:         apiKey,
		LeaseBatch:     leaseBatch,
		CompleteLinger: linger,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return usageError{err}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "ptestd worker: joining fleet at %s\n", hubURL)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	fmt.Fprintf(os.Stderr, "ptestd worker: drained after %d cells\n", w.Completed())
	return nil
}

func storeDesc(dir, remoteURL string) string {
	switch {
	case strings.Contains(remoteURL, ","):
		return "sharded " + remoteURL
	case remoteURL != "":
		return "remote " + remoteURL
	case dir != "":
		return dir
	}
	return "memory"
}
