// ptest tools: list the registered testing tools and workloads — the
// vocabulary suite specs and run flags accept. The listing is registry
// introspection, so a tool or workload registered anywhere in the
// build (including out-of-tree files) appears here with no CLI edits.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/tool"
	"repro/internal/workload"
)

func cmdTools(args []string) error {
	fs := flag.NewFlagSet("ptest tools", flag.ContinueOnError)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("tools: takes no arguments")
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TOOL\tAXES\tDESCRIPTION")
	for _, t := range tool.Registered() {
		fmt.Fprintf(w, "%s\t%s\t%s\n", t.Name(), axesString(t.Axes()), t.Doc())
	}
	fmt.Fprintln(w, "\t\t")
	fmt.Fprintln(w, "WORKLOAD\t\tDESCRIPTION")
	for _, name := range workload.Names() {
		fmt.Fprintf(w, "%s\t\t%s\n", name, workload.Doc(name))
	}
	return w.Flush()
}

// axesString renders the matrix axes a tool consumes; every tool takes
// the workload and n axes, so only the optional ones are listed.
func axesString(a tool.Axes) string {
	s := "workload,n"
	if a.S {
		s += ",s"
	}
	if a.Op {
		s += ",op"
	}
	if a.PD {
		s += ",pd"
	}
	return s
}
