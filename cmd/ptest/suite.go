// ptest suite: expand a declarative matrix spec into a deterministic
// run plan, execute every cell, and write the machine-readable reports
// CI diffs run-over-run. With -store, cells already computed by any
// entry point (run, suite, a ptestd job) are served from the
// content-addressed result store instead of re-executing. SIGINT mid-
// sweep flushes the completed plan-order prefix and writes a partial
// report marked "interrupted": true instead of dying mid-write.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/suite"
)

func cmdSuite(args []string) error {
	fs := flag.NewFlagSet("ptest suite", flag.ContinueOnError)
	var (
		specPath   = fs.String("spec", "", "suite spec JSON file (required)")
		outPath    = fs.String("out", "", "aggregated JSON report path (default: stdout)")
		jsonlPath  = fs.String("jsonl", "", "per-cell JSONL stream path (optional)")
		canonical  = fs.Bool("canonical", false, "zero timing fields in the report (for committed baselines)")
		cells      = fs.Int("cells", 0, "cell workers: overrides the spec's cell_parallelism (0 = keep spec)")
		storeDir   = fs.String("store", "", "content-addressed result store directory (cells found there are not re-executed)")
		storeURL   = fs.String("store-url", "", "remote result store: a ptestd base URL whose cell cache this run shares; comma-separate several URLs for a sharded hub tier (mutually exclusive with -store)")
		storeMem   = fs.Int("store-mem", 4096, "result-store in-memory LRU entries")
		storeBatch = fs.Int("store-batch", 16, "coalesce remote store writes into batches of this many cells (0 = one PUT per cell; -store-url only)")
		apiKey     = apiKeyFlag(fs)
		quiet      = fs.Bool("quiet", false, "suppress the per-cell progress summary on stderr")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *specPath == "" {
		return usagef("suite: -spec is required")
	}
	spec, err := suite.ParseFile(*specPath)
	if err != nil {
		return usageError{err}
	}
	if *cells != 0 {
		spec.CellParallelism = *cells
	}

	var opts suite.Options
	if *storeDir != "" || *storeURL != "" {
		st, err := openStoreFlag(store.Config{Dir: *storeDir, MemEntries: *storeMem}, *storeURL, *apiKey, *storeBatch, 0)
		if err != nil {
			return err
		}
		defer st.Close()
		opts.Store = st
	}

	var jsonl io.Writer
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl = f
	}

	// SIGINT/SIGTERM stop the sweep at the next cell boundary; the
	// completed prefix still comes back as an interrupted partial report.
	// After the first signal the handler is released, so a second Ctrl-C
	// kills the process instead of being swallowed while a long cell
	// finishes.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		select {
		case <-sigc:
			signal.Stop(sigc)
			fmt.Fprintln(os.Stderr, "suite: interrupt — finishing the current cell (interrupt again to abort hard)")
			cancel()
		case <-ctx.Done():
		}
	}()

	rep, err := suite.RunContext(ctx, spec, jsonl, opts)
	interrupted := errors.Is(err, suite.ErrInterrupted)
	if err != nil && !interrupted {
		return err
	}
	// Capture before Canonical zeroes the store counters.
	storeHits, storeMisses := rep.StoreHits, rep.StoreMisses
	if *canonical {
		rep = report.Canonical(rep)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "suite %s: %d cells, %d with bugs (detection rate %.2f), %d trials, %d bugs\n",
			rep.Suite, rep.Totals.Cells, rep.Totals.CellsWithBugs,
			rep.Totals.DetectionRate, rep.Totals.Trials, rep.Totals.Bugs)
		if opts.Store != nil {
			fmt.Fprintf(os.Stderr, "suite %s: %d cells from store, %d executed\n",
				rep.Suite, storeHits, storeMisses)
		}
	}
	var writeErr error
	if *outPath == "" {
		writeErr = report.Write(os.Stdout, rep)
	} else {
		writeErr = report.WriteFile(*outPath, rep)
	}
	if writeErr != nil {
		return writeErr
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "suite %s: interrupted after %d cells — partial report marked \"interrupted\": true\n",
			rep.Suite, rep.Totals.Cells)
		return errFailed
	}
	return nil
}
