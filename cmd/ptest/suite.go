// ptest suite: expand a declarative matrix spec into a deterministic
// run plan, execute every cell, and write the machine-readable reports
// CI diffs run-over-run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/report"
	"repro/internal/suite"
)

func cmdSuite(args []string) error {
	fs := flag.NewFlagSet("ptest suite", flag.ContinueOnError)
	var (
		specPath  = fs.String("spec", "", "suite spec JSON file (required)")
		outPath   = fs.String("out", "", "aggregated JSON report path (default: stdout)")
		jsonlPath = fs.String("jsonl", "", "per-cell JSONL stream path (optional)")
		canonical = fs.Bool("canonical", false, "zero timing fields in the report (for committed baselines)")
		cells     = fs.Int("cells", 0, "cell workers: overrides the spec's cell_parallelism (0 = keep spec)")
		quiet     = fs.Bool("quiet", false, "suppress the per-cell progress summary on stderr")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *specPath == "" {
		return usagef("suite: -spec is required")
	}
	spec, err := suite.ParseFile(*specPath)
	if err != nil {
		return usageError{err}
	}
	if *cells != 0 {
		spec.CellParallelism = *cells
	}

	var jsonl io.Writer
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl = f
	}

	rep, err := suite.Run(spec, jsonl)
	if err != nil {
		return err
	}
	if *canonical {
		rep = report.Canonical(rep)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "suite %s: %d cells, %d with bugs (detection rate %.2f), %d trials, %d bugs\n",
			rep.Suite, rep.Totals.Cells, rep.Totals.CellsWithBugs,
			rep.Totals.DetectionRate, rep.Totals.Trials, rep.Totals.Bugs)
	}
	if *outPath == "" {
		return report.Write(os.Stdout, rep)
	}
	return report.WriteFile(*outPath, rep)
}
