// Command ptest is the reproduction's CLI. It grew from a single
// campaign runner into a small toolbox:
//
//	ptest run      one campaign against the simulated platform (the
//	               original behavior; "ptest -pcore ..." still works)
//	ptest suite    expand a declarative matrix spec into a run plan,
//	               execute every cell, and emit machine-readable reports
//	ptest compare  diff two suite reports and fail on regressions —
//	               the CI gate
//	ptest serve    run ptestd, the campaign job server: HTTP submissions,
//	               bounded priority queue, worker pool, SSE progress,
//	               content-addressed result store, graceful drain — or,
//	               with -hub-url, join another ptestd's fleet as a
//	               lease-polling cell worker
//	ptest client   talk to a ptestd: submit|status|watch|report|cancel|
//	               workers|events
//	ptest tools    list the registered testing tools and workloads
//	ptest store    administer a result store directory (stat, compact)
//
// Every tool and workload name above resolves through the
// internal/tool and internal/workload registries: `ptest run -tool
// pct`, suite specs, ptestd jobs and the result store all pick up a
// newly registered tool with no CLI edits.
//
// Usage:
//
//	ptest run -pcore -n 16 -s 24 -workload quicksort -gc-leak-every 2
//	ptest run -re 'TC (TS TR)+ TD$' -n 3 -s 41 -op cyclic -workload philosophers
//	ptest suite -spec examples/suite/smoke.json -out report.json -jsonl cells.jsonl
//	ptest suite -spec sweep.json -store ~/.cache/ptest-store   # warm cells skip execution
//	ptest suite -spec sweep.json -store-url http://cache:8321  # share a ptestd fleet's cache
//	ptest compare -max-rate-drop 0.05 baseline.json report.json
//	ptest serve -addr :8321 -store /var/lib/ptestd/store
//	ptest serve -hub-url http://hub:8321 -name rack3   # fleet cell worker
//	ptest serve -addr :8321 -events 8192               # + /api/v1/events and /ui
//	ptest client submit -spec sweep.json -priority 5 -wait
//	ptest client workers                               # fleet membership
//	ptest client events -follow -type lease            # tail the event log
//
// Exit codes: 0 success, 1 failure found / regression / runtime error,
// 2 flag or spec validation error. All errors print one greppable
// "ptest: error: ..." line to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
)

// usageError marks flag/spec validation failures: every bad input —
// unknown flag, unparsable spec, invalid value — routes through it so
// the process exits 2 with one greppable message and a usage hint
// instead of the ad-hoc os.Exit scatter this file used to have.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// usagef builds a usageError.
func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// errFailed signals an unhealthy-but-expected outcome (bugs found,
// regression detected) whose details the subcommand already printed:
// exit 1 with no extra stderr line.
var errFailed = errors.New("failed")

func main() {
	args := os.Args[1:]
	cmd := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}

	var err error
	switch cmd {
	case "run":
		err = cmdRun(args)
	case "suite":
		err = cmdSuite(args)
	case "compare":
		err = cmdCompare(args)
	case "serve":
		err = cmdServe(args)
	case "client":
		err = cmdClient(args)
	case "tools":
		err = cmdTools(args)
	case "store":
		err = cmdStoreAdmin(args)
	case "help":
		usage(os.Stdout)
	default:
		err = usagef("unknown subcommand %q (want run|suite|compare|serve|client|tools|store|help)", cmd)
	}

	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// "-h" printed the flag list already; a help request succeeds.
	case errors.Is(err, errFailed):
		os.Exit(1)
	case errors.As(err, &usageError{}):
		fmt.Fprintf(os.Stderr, "ptest: error: %v\n", err)
		fmt.Fprintln(os.Stderr, `run "ptest help" for usage`)
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "ptest: error: %v\n", err)
		os.Exit(1)
	}
}

// parseFlags runs a subcommand's flag set and converts parse errors
// into the shared usage-error path. A "-h" help request passes through
// unwrapped so main exits 0 for it.
func parseFlags(fs *flag.FlagSet, args []string) error {
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err}
	}
	return nil
}

func usage(w *os.File) {
	fmt.Fprint(w, `ptest — adaptive testing for concurrent software on a simulated multicore

subcommands:
  run      run one campaign (default when the first argument is a flag)
  suite    expand a matrix spec, run every cell, write JSON/JSONL reports
  compare  diff two suite reports; exit non-zero on regression
  serve    run ptestd, the campaign job server (HTTP + SSE + result store);
           -events N adds the fleet event log and /ui dashboard;
           with -hub-url, join a hub's fleet as a cell worker instead
  client   talk to a ptestd: submit|status|watch|report|cancel|workers|events
  tools    list the registered testing tools and workloads
  store    administer a result store directory (stat, compact)
  help     print this text

run "ptest <subcommand> -h" for that subcommand's flags.

exit codes: 0 ok; 1 failures found, regression, or runtime error;
2 invalid flags or spec.
`)
}
