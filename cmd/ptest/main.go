// Command ptest runs the full adaptive testing tool against the
// simulated OMAP-like platform: Algorithm 1 with configuration
// (RE, n, s, op), a slave workload, optional fault injection, and the
// bug detector. It is the reproduction's equivalent of running pTest on
// the board.
//
// Usage:
//
//	ptest -pcore -n 16 -s 24 -workload quicksort -gc-leak-every 2
//	ptest -re 'TC (TS TR)+ TD$' -pd '^:TC=1,TC:TS=1,TS:TR=1,TR:TS=1,TR:TD=0' \
//	      -n 3 -s 41 -op cyclic -workload philosophers -quantum 1073741824 -gap 100
//	ptest -pcore -n 4 -s 12 -trials 20 -keep-going
//	ptest -pcore -n 16 -s 24 -workload quicksort -trials 64 -parallel 0   # one worker per CPU
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/app"
	"repro/internal/clock"
	"repro/internal/committee"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/pcore"
	"repro/internal/pfa"
	"repro/internal/replay"
)

func parsePD(spec string) (pfa.Distribution, error) {
	d := pfa.Distribution{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		colon := strings.Index(item, ":")
		eq := strings.LastIndex(item, "=")
		if colon < 0 || eq < colon {
			return nil, fmt.Errorf("bad PD entry %q (want from:symbol=prob)", item)
		}
		p, err := strconv.ParseFloat(item[eq+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bad probability in %q: %v", item, err)
		}
		from, sym := item[:colon], item[colon+1:eq]
		if d[from] == nil {
			d[from] = map[string]float64{}
		}
		d[from][sym] = p
	}
	return d, nil
}

func main() {
	var (
		re        = flag.String("re", "", "service regular expression")
		pdSpec    = flag.String("pd", "", "probability distribution: from:symbol=prob,... ('^' = start)")
		usePcore  = flag.Bool("pcore", false, "use the paper's expression (2) + Figure 5 distribution")
		n         = flag.Int("n", 4, "number of test patterns (logical tasks)")
		s         = flag.Int("s", 12, "pattern size")
		opName    = flag.String("op", "roundrobin", "merge op: roundrobin|random|cyclic|priority|sequential")
		seed      = flag.Uint64("seed", 1, "base seed")
		trials    = flag.Int("trials", 1, "campaign trials (seed increments per trial)")
		parallel  = flag.Int("parallel", 1, "trial workers: 1 = sequential, 0 = one per CPU (results identical either way)")
		keepGoing = flag.Bool("keep-going", false, "do not stop the campaign at the first bug")
		dedup     = flag.Bool("dedup", false, "discard replicated patterns before merging")
		gap       = flag.Int("gap", 0, "inter-command gap in cycles (stress density)")
		workload  = flag.String("workload", "spin", "spin | quicksort | philosophers | ordered-philosophers | prodcons | inversion")
		rounds    = flag.Int("rounds", 100000, "philosopher eating rounds")
		quantum   = flag.Int("quantum", 0, "slave quantum in cycles")
		gcLeak    = flag.Int("gc-leak-every", 0, "arm the GC leak fault")
		dropTR    = flag.Int("drop-resume-every", 0, "arm the lost-wakeup fault")
		misprio   = flag.Int("misplace-prio-every", 0, "arm the priority-misplacement fault")
		dumpJ     = flag.Bool("dump-journal", false, "print the Definition 2 record journal of the failing run")
		saveRepro = flag.String("save-repro", "", "write a reproduction file for the first failing run")
		replayF   = flag.String("replay", "", "re-execute a reproduction file instead of generating patterns")
	)
	flag.Parse()

	if *replayF != "" {
		runReplay(*replayF, *rounds)
		return
	}

	expr, pd := *re, pfa.Distribution(nil)
	if *usePcore {
		expr, pd = pfa.PCoreRE, pfa.PCoreDistribution()
	}
	if expr == "" {
		fmt.Fprintln(os.Stderr, "ptest: provide -re or -pcore")
		os.Exit(2)
	}
	if *pdSpec != "" {
		var err error
		pd, err = parsePD(*pdSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptest:", err)
			os.Exit(1)
		}
	}
	op, err := pattern.ParseOp(*opName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptest:", err)
		os.Exit(1)
	}

	// Every trial gets a freshly built factory: workloads with shared
	// state (philosopher forks, producer/consumer buffers) must not leak
	// it across trials — and must not share it between concurrently
	// simulated platforms when -parallel > 1.
	var newFactory func() committee.Factory
	switch *workload {
	case "spin":
		newFactory = app.SpinFactory
	case "quicksort":
		newFactory = func() committee.Factory { return app.QuicksortFactory(*seed) }
	case "philosophers":
		newFactory = func() committee.Factory {
			f, _ := app.Philosophers(max(*n, 2), *rounds, false)
			return f
		}
	case "ordered-philosophers":
		newFactory = func() committee.Factory {
			f, _ := app.Philosophers(max(*n, 2), *rounds, true)
			return f
		}
	case "prodcons":
		newFactory = func() committee.Factory { return app.ProducerConsumer(10) }
	case "inversion":
		newFactory = func() committee.Factory { return app.PriorityInversion(100000) }
	default:
		fmt.Fprintf(os.Stderr, "ptest: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	kcfg := pcore.Config{
		Faults: pcore.FaultPlan{
			GCLeakEvery:           *gcLeak,
			DropResumeEvery:       *dropTR,
			MisplacePriorityEvery: *misprio,
		},
	}
	if *quantum > 0 {
		kcfg.Quantum = clock.Cycles(*quantum)
	}

	base := core.Config{
		RE: expr, PD: pd,
		N: *n, S: *s, Op: op, Seed: *seed,
		Dedup: *dedup, CommandGap: *gap,
		Kernel:     kcfg,
		NewFactory: newFactory,
	}

	parallelism := *parallel
	if parallelism <= 0 {
		parallelism = -1 // engine: one worker per CPU
	}
	res, err := core.RunCampaign(core.CampaignConfig{
		Base: base, Trials: *trials, KeepGoing: *keepGoing, Parallelism: parallelism,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptest:", err)
		os.Exit(1)
	}

	fmt.Printf("pTest: RE=%q n=%d s=%d op=%s trials=%d\n", expr, *n, *s, op, res.Trials)
	fmt.Printf("commands issued: %d   virtual time: %d cycles\n", res.TotalCommands, res.TotalDuration)
	for i, out := range res.Outcomes {
		verdict := "clean"
		if out.Bug != nil {
			verdict = out.Bug.String()
		} else if !out.Finished {
			verdict = "incomplete (step budget)"
		}
		fmt.Printf("  trial %2d seed=%-4d cmds=%-5d cov=%.2f/%.2f  %s\n",
			i+1, out.Seed, out.CommandsIssued,
			out.Coverage.Services, out.Coverage.Transitions, verdict)
	}
	if len(res.Bugs) > 0 {
		fmt.Printf("FAILURES: %d of %d trials (first at trial %d)\n",
			len(res.Bugs), res.Trials, res.FirstBugTrial)
		if *dumpJ {
			fmt.Println("--- reproduction journal of first failure ---")
			fmt.Print(res.Bugs[0].Journal)
		}
		if *saveRepro != "" {
			// Locate the failing outcome and its effective config.
			for i, out := range res.Outcomes {
				if out.Bug == nil {
					continue
				}
				cfg := base
				cfg.Seed = base.Seed + uint64(i)
				f := replay.FromOutcome(cfg, out, *workload, *seed)
				file, err := os.Create(*saveRepro)
				if err != nil {
					fmt.Fprintln(os.Stderr, "ptest:", err)
					break
				}
				err = f.Save(file)
				_ = file.Close()
				if err != nil {
					fmt.Fprintln(os.Stderr, "ptest:", err)
					break
				}
				fmt.Printf("reproduction written to %s\n", *saveRepro)
				break
			}
		}
		os.Exit(1)
	}
	fmt.Println("no failures detected")
}

// runReplay re-executes a saved reproduction file.
func runReplay(path string, rounds int) {
	file, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptest:", err)
		os.Exit(1)
	}
	f, err := replay.Load(file)
	_ = file.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptest:", err)
		os.Exit(1)
	}
	var factory committee.Factory
	switch f.Workload {
	case "spin":
		factory = app.SpinFactory()
	case "quicksort":
		factory = app.QuicksortFactory(f.WorkloadSeed)
	case "philosophers":
		factory, _ = app.Philosophers(max(f.Sources, 2), rounds, false)
	case "ordered-philosophers":
		factory, _ = app.Philosophers(max(f.Sources, 2), rounds, true)
	case "prodcons":
		factory = app.ProducerConsumer(10)
	case "inversion":
		factory = app.PriorityInversion(100000)
	default:
		fmt.Fprintf(os.Stderr, "ptest: reproduction references unknown workload %q\n", f.Workload)
		os.Exit(1)
	}
	fmt.Printf("replaying %s: %d commands, workload %s\n", path, len(f.Entries), f.Workload)
	if f.BugSummary != "" {
		fmt.Printf("originally detected: %s\n", f.BugSummary)
	}
	out, err := f.Run(factory)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptest:", err)
		os.Exit(1)
	}
	if out.Bug != nil {
		fmt.Println("reproduced:", out.Bug)
		os.Exit(1)
	}
	fmt.Println("replay finished clean (bug did not reproduce)")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
