// ptest run: one campaign against the simulated OMAP-like platform —
// Algorithm 1 with configuration (RE, n, s, op), a slave workload,
// optional fault injection, and the bug detector. The reproduction's
// equivalent of running pTest on the board. -tool selects any
// registered tool by name: the adaptive default keeps the original
// direct campaign path (per-trial console output, -save-repro,
// -dump-journal); every other tool runs as a one-cell suite, sharing
// cell identities with `ptest suite` and ptestd.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/clock"
	"repro/internal/committee"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/pcore"
	"repro/internal/pfa"
	"repro/internal/replay"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/suite"
	"repro/internal/tool"
	"repro/internal/workload"
)

func parsePD(spec string) (pfa.Distribution, error) {
	d := pfa.Distribution{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		colon := strings.Index(item, ":")
		eq := strings.LastIndex(item, "=")
		if colon < 0 || eq < colon {
			return nil, fmt.Errorf("bad PD entry %q (want from:symbol=prob)", item)
		}
		p, err := strconv.ParseFloat(item[eq+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bad probability in %q: %v", item, err)
		}
		from, sym := item[:colon], item[colon+1:eq]
		if d[from] == nil {
			d[from] = map[string]float64{}
		}
		d[from][sym] = p
	}
	return d, nil
}

// newWorkloadFactory builds the per-trial factory constructor shared by
// run and replay, routing through the internal/workload registry.
// Every trial gets a freshly built factory:
// workloads with shared state (philosopher forks, producer/consumer
// buffers) must not leak it across trials — and must not share it
// between concurrently simulated platforms when -parallel > 1.
func newWorkloadFactory(workload string, n, rounds int, seed uint64) (func() committee.Factory, error) {
	nf, err := suite.WorkloadSpec{Name: workload, Seed: seed, Rounds: rounds}.NewFactory(n)
	if err != nil {
		return nil, usagef("%v", err)
	}
	return nf, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("ptest run", flag.ContinueOnError)
	var (
		re         = fs.String("re", "", "service regular expression")
		pdSpec     = fs.String("pd", "", "probability distribution: from:symbol=prob,... ('^' = start)")
		usePcore   = fs.Bool("pcore", false, "use the paper's expression (2) + Figure 5 distribution")
		toolName   = fs.String("tool", "adaptive", "testing tool: "+tool.NamesHint()+" (non-adaptive tools run as a one-cell suite with the tool's default knobs)")
		n          = fs.Int("n", 4, "number of test patterns (logical tasks)")
		s          = fs.Int("s", 12, "pattern size")
		opName     = fs.String("op", "roundrobin", "merge op: roundrobin|random|cyclic|priority|sequential")
		seed       = fs.Uint64("seed", 1, "base seed")
		trials     = fs.Int("trials", 1, "campaign trials (seed increments per trial)")
		parallel   = fs.Int("parallel", 1, "trial workers: 1 = sequential, 0 = one per CPU (results identical either way)")
		keepGoing  = fs.Bool("keep-going", false, "do not stop the campaign at the first bug")
		dedup      = fs.Bool("dedup", false, "discard replicated patterns before merging")
		gap        = fs.Int("gap", 0, "inter-command gap in cycles (stress density)")
		workloadF  = fs.String("workload", "spin", "slave workload: "+workload.NamesHint())
		rounds     = fs.Int("rounds", suite.DefaultRounds, "philosopher eating rounds")
		quantum    = fs.Int("quantum", 0, "slave quantum in cycles")
		gcLeak     = fs.Int("gc-leak-every", 0, "arm the GC leak fault")
		dropTR     = fs.Int("drop-resume-every", 0, "arm the lost-wakeup fault")
		misprio    = fs.Int("misplace-prio-every", 0, "arm the priority-misplacement fault")
		jsonOut    = fs.Bool("json", false, "print the campaign summary as JSON instead of text")
		dumpJ      = fs.Bool("dump-journal", false, "print the Definition 2 record journal of the failing run")
		saveRepro  = fs.String("save-repro", "", "write a reproduction file for the first failing run")
		replayF    = fs.String("replay", "", "re-execute a reproduction file instead of generating patterns")
		storeDir   = fs.String("store", "", "content-addressed result store directory: execute as a one-cell suite, skipping cells already computed by run/suite/ptestd (campaign seeds derive from the cell identity, not -seed directly)")
		storeURL   = fs.String("store-url", "", "remote result store: a ptestd base URL whose cell cache this run shares; comma-separate several URLs for a sharded hub tier (mutually exclusive with -store)")
		storeMem   = fs.Int("store-mem", 4096, "result-store in-memory LRU entries")
		storeBatch = fs.Int("store-batch", 16, "coalesce remote store writes into batches of this many cells (0 = one PUT per cell; -store-url only)")
		apiKey     = apiKeyFlag(fs)
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	if *replayF != "" {
		return runReplay(*replayF, *rounds)
	}
	tl, ok := tool.Lookup(*toolName)
	if !ok {
		return usagef("run: unknown tool %q (want %s)", *toolName, tool.NamesHint())
	}
	direct := tl.Name() == "adaptive" && *storeDir == "" && *storeURL == ""
	if !direct && (*saveRepro != "" || *dumpJ) {
		// The one-cell-suite path (and cached cells) carries only the
		// campaign summary, not per-trial outcomes — it could not honor
		// either flag.
		return usagef("run: -save-repro/-dump-journal require the direct adaptive path (no -store, no non-adaptive -tool)")
	}

	expr, pd := *re, pfa.Distribution(nil)
	if *usePcore {
		expr, pd = pfa.PCoreRE, pfa.PCoreDistribution()
	}
	if expr == "" && (direct || tl.Axes().S) {
		// Pattern-generating tools need the service expression; pure
		// scheduling perturbers (contest, pct) let the spec default it.
		return usagef("provide -re or -pcore")
	}
	if *re != "" && !direct && !tl.Axes().S {
		// An expression the tool never reads still sits at the spec level
		// of the cell-identity hash: accepting it would store a second,
		// behaviorally identical cell under a different key. (-pcore is
		// fine — it resolves to the spec's default expression.)
		return usagef("run: -re has no effect on tool %q (it generates no patterns)", tl.Name())
	}
	if *pdSpec != "" {
		var err error
		pd, err = parsePD(*pdSpec)
		if err != nil {
			return usagef("%v", err)
		}
	}
	op, err := pattern.ParseOp(*opName)
	if err != nil {
		return usagef("%v", err)
	}
	newFactory, err := newWorkloadFactory(*workloadF, *n, *rounds, *seed)
	if err != nil {
		return err
	}

	kcfg := pcore.Config{
		Faults: pcore.FaultPlan{
			GCLeakEvery:           *gcLeak,
			DropResumeEvery:       *dropTR,
			MisplacePriorityEvery: *misprio,
		},
	}
	if *quantum > 0 {
		kcfg.Quantum = clock.Cycles(*quantum)
	}

	base := core.Config{
		RE: expr, PD: pd,
		N: *n, S: *s, Op: op, Seed: *seed,
		Dedup: *dedup, CommandGap: *gap,
		Kernel:     kcfg,
		NewFactory: newFactory,
	}

	parallelism := *parallel
	if parallelism <= 0 {
		parallelism = -1 // engine: one worker per CPU
	}

	if !direct {
		// The suite seed space reserves 0 for "default": a literal seed 0
		// would silently collapse onto seed 1's cell.
		if *seed == 0 {
			return usagef("run: -store/-tool require -seed >= 1")
		}
		// A knob the tool ignores at execution time but that re-keys the
		// cell (gap and dedup sit at the spec level of the identity hash)
		// would store a second, behaviorally identical cell — reject it,
		// mirroring the suite's knob-ownership validation. The gate is
		// the registered axes (pattern-generating tools consume the size
		// axis and with it patterns, gaps and dedup), not a tool name.
		if !tl.Axes().S {
			if *dedup {
				return usagef("run: -dedup has no effect on tool %q (it generates no patterns)", tl.Name())
			}
			if *gap != 0 {
				return usagef("run: -gap has no effect on tool %q (it issues no command pattern)", tl.Name())
			}
		}
		return runViaSpec(runSpecArgs{
			usePcore: *usePcore, re: expr, pdSpec: *pdSpec, pd: pd,
			tool: tl.Name(), n: *n, s: *s, opName: *opName, seed: *seed, trials: *trials,
			keepGoing: *keepGoing, dedup: *dedup, gap: *gap,
			workload: *workloadF, rounds: *rounds, quantum: *quantum,
			gcLeak: *gcLeak, dropTR: *dropTR, misprio: *misprio,
			parallelism: parallelism, jsonOut: *jsonOut,
			storeDir: *storeDir, storeURL: *storeURL, storeMem: *storeMem,
			storeBatch: *storeBatch, apiKey: *apiKey,
		})
	}

	res, err := core.RunCampaign(core.CampaignConfig{
		Base: base, Trials: *trials, KeepGoing: *keepGoing, Parallelism: parallelism,
	})
	if err != nil {
		return err
	}

	if *jsonOut {
		rep := &report.Report{
			SchemaVersion: report.SchemaVersion,
			Suite:         "run",
			Cells: []report.Cell{{
				ID:       fmt.Sprintf("%s/%s/n%ds%d/adaptive", *workloadF, op, *n, *s),
				Workload: *workloadF, Op: op.String(), N: *n, S: *s,
				Tool: "adaptive", Seed: *seed,
				Summary: res.Summary(),
			}},
		}
		rep.Aggregate()
		if err := report.Write(os.Stdout, rep); err != nil {
			return err
		}
	} else {
		printCampaign(expr, *n, *s, op, res)
	}
	if len(res.Bugs) > 0 {
		// With -json, stdout carries only the report — the human-oriented
		// extras go to stderr so `ptest run -json | jq` keeps parsing.
		extras := io.Writer(os.Stdout)
		if *jsonOut {
			extras = os.Stderr
		}
		if *dumpJ {
			fmt.Fprintln(extras, "--- reproduction journal of first failure ---")
			fmt.Fprint(extras, res.Bugs[0].Journal)
		}
		if *saveRepro != "" {
			if err := saveReproduction(extras, *saveRepro, base, res, *workloadF, *seed); err != nil {
				return err
			}
		}
		return errFailed
	}
	if !*jsonOut {
		fmt.Println("no failures detected")
	}
	return nil
}

func printCampaign(expr string, n, s int, op pattern.Op, res *core.CampaignResult) {
	fmt.Printf("pTest: RE=%q n=%d s=%d op=%s trials=%d\n", expr, n, s, op, res.Trials)
	fmt.Printf("commands issued: %d   virtual time: %d cycles\n", res.TotalCommands, res.TotalDuration)
	for i, out := range res.Outcomes {
		verdict := "clean"
		if out.Bug != nil {
			verdict = out.Bug.String()
		} else if !out.Finished {
			verdict = "incomplete (step budget)"
		}
		fmt.Printf("  trial %2d seed=%-4d cmds=%-5d cov=%.2f/%.2f  %s\n",
			i+1, out.Seed, out.CommandsIssued,
			out.Coverage.Services, out.Coverage.Transitions, verdict)
	}
	if len(res.Bugs) > 0 {
		fmt.Printf("FAILURES: %d of %d trials (first at trial %d)\n",
			len(res.Bugs), res.Trials, res.FirstBugTrial)
	}
}

// runSpecArgs carries cmdRun's resolved flags into the one-cell-suite
// path.
type runSpecArgs struct {
	usePcore bool
	// re is the resolved expression (after -pcore override), so the
	// spec path and direct execution always run the same RE.
	re, pdSpec, opName        string
	tool                      string
	workload                  string
	storeDir, storeURL        string
	apiKey                    string
	pd                        pfa.Distribution
	n, s, trials, rounds      int
	quantum, gap              int
	gcLeak, dropTR, misprio   int
	seed                      uint64
	keepGoing, dedup, jsonOut bool
	parallelism, storeMem     int
	storeBatch                int
}

// runViaSpec executes the run as a one-cell suite — the path every
// non-adaptive tool takes (tool dispatch lives in the registry, not
// here), and the adaptive path too when -store is set. The cell
// identity — and therefore the derived campaign seed — is exactly what
// `ptest suite` or a ptestd job would compute for the same
// configuration, so all entry points share results: a cell any of them
// computed is never recomputed.
func runViaSpec(a runSpecArgs) error {
	pds := []suite.PDSpec{{Name: "uniform", Builtin: "uniform"}}
	switch {
	case a.pdSpec != "":
		pds = []suite.PDSpec{{Name: "custom", Dist: a.pd}}
	case a.usePcore:
		// The same name/builtin pair a suite spec defaults to, so the
		// paper-configuration cells are shared with paper-style sweeps.
		pds = []suite.PDSpec{{Name: "figure5", Builtin: "pcore"}}
	}
	// Only data-seeded workloads (a registry property, not a name list)
	// consume the workload data seed; stamping it on seed-insensitive
	// workloads would needlessly re-key cells that a suite spec (which
	// omits it) computes identically. The other knobs (rounds etc.) are
	// normalized by the spec's applyDefaults, so the flag default and an
	// omitted spec field already key the same.
	var workloadSeed uint64
	if workload.UsesDataSeed(a.workload) {
		workloadSeed = a.seed
	}
	spec := &suite.Spec{
		Name: "run", RE: a.re, Seed: a.seed, Trials: a.trials,
		KeepGoing: a.keepGoing, Dedup: a.dedup, CommandGap: a.gap,
		TrialParallelism: a.parallelism,
		Workloads: []suite.WorkloadSpec{{
			Name: a.workload, Seed: workloadSeed, Rounds: a.rounds, Quantum: a.quantum,
			GCLeakEvery: a.gcLeak, DropResumeEvery: a.dropTR, MisplacePriorityEvery: a.misprio,
		}},
		Ops:    []string{a.opName},
		Points: []suite.Point{{N: a.n, S: a.s}},
		PDs:    pds,
		Tools:  []suite.ToolSpec{{Name: a.tool}},
	}

	var opts suite.Options
	if a.storeDir != "" || a.storeURL != "" {
		st, err := openStoreFlag(store.Config{Dir: a.storeDir, MemEntries: a.storeMem}, a.storeURL, a.apiKey, a.storeBatch, 0)
		if err != nil {
			return err
		}
		defer st.Close()
		opts.Store = st
	}
	rep, err := suite.RunContext(context.Background(), spec, nil, opts)
	if err != nil {
		return err
	}
	cell := rep.Cells[0]
	if a.jsonOut {
		if err := report.Write(os.Stdout, rep); err != nil {
			return err
		}
	} else {
		source := "executed"
		if rep.StoreHits > 0 {
			source = "served from store"
		}
		sum := cell.Summary
		fmt.Printf("pTest: cell %s (%s)\n", cell.ID, source)
		// CleanFinishes is adaptive-only (mirrors the JSON omitempty):
		// printing a hard 0 for tools that never report it would read as
		// "no trial finished clean".
		clean := ""
		if sum.CleanFinishes > 0 {
			clean = fmt.Sprintf(" clean_finishes=%d", sum.CleanFinishes)
		}
		fmt.Printf("trials=%d bugs=%d bug_rate=%.2f%s commands=%d virtual_cycles=%d\n",
			sum.Trials, sum.Bugs, sum.BugRate, clean, sum.TotalCommands, sum.TotalCycles)
		if sum.FirstBug != "" {
			fmt.Printf("first failure (trial %d): %s\n", sum.FirstBugTrial, sum.FirstBug)
		}
	}
	if cell.Summary.Bugs > 0 {
		return errFailed
	}
	if !a.jsonOut {
		fmt.Println("no failures detected")
	}
	return nil
}

// saveReproduction locates the first failing outcome and writes its
// reproduction file; the confirmation line goes to w.
func saveReproduction(w io.Writer, path string, base core.Config, res *core.CampaignResult, workload string, workloadSeed uint64) error {
	for i, out := range res.Outcomes {
		if out.Bug == nil {
			continue
		}
		cfg := base
		cfg.Seed = base.Seed + uint64(i)
		f := replay.FromOutcome(cfg, out, workload, workloadSeed)
		file, err := os.Create(path)
		if err != nil {
			return err
		}
		err = f.Save(file)
		if cerr := file.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "reproduction written to %s\n", path)
		return nil
	}
	return nil
}

// runReplay re-executes a saved reproduction file.
func runReplay(path string, rounds int) error {
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	f, err := replay.Load(file)
	_ = file.Close()
	if err != nil {
		return err
	}
	// A reproduction file naming a workload this binary doesn't know is
	// corrupt/stale data, not a bad invocation: runtime failure, exit 1.
	newFactory, err := newWorkloadFactory(f.Workload, f.Sources, rounds, f.WorkloadSeed)
	if err != nil {
		return fmt.Errorf("reproduction references unknown workload %q", f.Workload)
	}
	fmt.Printf("replaying %s: %d commands, workload %s\n", path, len(f.Entries), f.Workload)
	if f.BugSummary != "" {
		fmt.Printf("originally detected: %s\n", f.BugSummary)
	}
	out, err := f.Run(newFactory())
	if err != nil {
		return err
	}
	if out.Bug != nil {
		fmt.Println("reproduced:", out.Bug)
		return errFailed
	}
	fmt.Println("replay finished clean (bug did not reproduce)")
	return nil
}
