// Command pfagen compiles a service regular expression and a probability
// distribution into a PFA, then emits Graphviz DOT, generated test
// patterns, or analysis figures.
//
// Usage:
//
//	pfagen -pcore -dot                             # Figure 5 as DOT
//	pfagen -re '(a c* d) | b' -pd '^:a=0.6,^:b=0.4,a:c=0.3,a:d=0.7,c:c=0.3,c:d=0.7' -n 5 -s 12
//	pfagen -pcore -analyze                         # stationary/entropy/frequencies
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/nfa"
	"repro/internal/pfa"
	"repro/internal/stats"
)

func parsePD(spec string) (pfa.Distribution, error) {
	d := pfa.Distribution{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		colon := strings.Index(item, ":")
		eq := strings.LastIndex(item, "=")
		if colon < 0 || eq < colon {
			return nil, fmt.Errorf("bad PD entry %q (want from:symbol=prob)", item)
		}
		from := item[:colon]
		sym := item[colon+1 : eq]
		p, err := strconv.ParseFloat(item[eq+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bad probability in %q: %v", item, err)
		}
		if d[from] == nil {
			d[from] = map[string]float64{}
		}
		d[from][sym] = p
	}
	return d, nil
}

func main() {
	var (
		re      = flag.String("re", "", "service regular expression")
		pdSpec  = flag.String("pd", "", "probability distribution: from:symbol=prob,... ('^' = start)")
		pcore   = flag.Bool("pcore", false, "use the paper's pCore expression (2) and Figure 5 distribution")
		fig3    = flag.Bool("fig3", false, "use the paper's Figure 3 automaton")
		uniform = flag.Bool("uniform", false, "use a uniform distribution over legal transitions")
		dot     = flag.Bool("dot", false, "emit Graphviz DOT")
		analyze = flag.Bool("analyze", false, "print stationary distribution, entropy rate and expected frequencies")
		n       = flag.Int("n", 0, "number of test patterns to generate")
		s       = flag.Int("s", 8, "pattern size")
		seed    = flag.Uint64("seed", 1, "generation seed")
	)
	flag.Parse()

	expr := *re
	var d pfa.Distribution
	switch {
	case *pcore:
		expr = pfa.PCoreRE
		d = pfa.PCoreDistribution()
	case *fig3:
		expr = pfa.Figure3RE
		d = pfa.Figure3Distribution()
	}
	if expr == "" {
		fmt.Fprintln(os.Stderr, "pfagen: provide -re, -pcore or -fig3")
		flag.Usage()
		os.Exit(2)
	}
	if *pdSpec != "" {
		var err error
		d, err = parsePD(*pdSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfagen:", err)
			os.Exit(1)
		}
	}
	if *uniform {
		d = nil
	}

	machine, err := pfa.FromRegex(expr, d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfagen:", err)
		os.Exit(1)
	}

	did := false
	if *dot {
		fmt.Print(machine.Dot("pfa"))
		did = true
	}
	if *analyze {
		fmt.Printf("states: %d  transitions: %d  alphabet: %v\n",
			machine.NumStates(), machine.NumTransitions(), machine.Alphabet())
		if pi, err := machine.StationaryDistribution(0, 0); err == nil {
			fmt.Println("stationary state distribution:")
			for q := 0; q < machine.NumStates(); q++ {
				if v, ok := pi[nfa.StateID(q)]; ok {
					label := machine.Label(nfa.StateID(q))
					if label == "" {
						label = "start"
					}
					fmt.Printf("  %-6s %.4f\n", label, v)
				}
			}
		}
		if h, err := machine.EntropyRate(); err == nil {
			fmt.Printf("entropy rate: %.4f bits/symbol\n", h)
		}
		freq := machine.ExpectedSymbolFreq(64)
		syms := make([]string, 0, len(freq))
		for sym := range freq {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		fmt.Println("expected symbol frequencies (64 steps):")
		for _, sym := range syms {
			fmt.Printf("  %-6s %.4f\n", sym, freq[sym])
		}
		did = true
	}
	if *n > 0 {
		rng := stats.New(*seed)
		pats, err := machine.GenerateSet(rng, *n, *s, pfa.DefaultGenOptions())
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfagen:", err)
			os.Exit(1)
		}
		for i, p := range pats {
			fmt.Printf("T[%d] = %s\n", i+1, strings.Join(p.Symbols, " "))
		}
		did = true
	}
	if !did {
		fmt.Print(machine.Dot("pfa"))
	}
}
