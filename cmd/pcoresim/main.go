// Command pcoresim runs a named workload directly on the simulated
// pCore slave kernel (no pTest patterns), printing the scheduler trace
// summary and final kernel state — a bring-up tool for the substrate.
//
// Usage:
//
//	pcoresim -workload quicksort -tasks 16
//	pcoresim -workload philosophers -tasks 3 -rounds 100
//	pcoresim -workload inversion -max-steps 200000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/app"
	"repro/internal/bridge"
	"repro/internal/clock"
	"repro/internal/committee"
	"repro/internal/detector"
	"repro/internal/master"
	"repro/internal/pcore"
	"repro/internal/platform"
	"repro/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "quicksort", "quicksort | unbounded-quicksort | philosophers | ordered-philosophers | prodcons | inversion | spin")
		tasks    = flag.Int("tasks", 3, "number of logical tasks to create")
		rounds   = flag.Int("rounds", 100, "philosopher eating rounds")
		items    = flag.Int("items", 10, "producer/consumer items")
		seed     = flag.Uint64("seed", 1, "workload seed")
		maxSteps = flag.Int("max-steps", 5_000_000, "co-simulation step budget")
		gcLeak   = flag.Int("gc-leak-every", 0, "arm the GC leak fault (leak every n-th collected block)")
		quantum  = flag.Int("quantum", 0, "slave scheduler quantum in cycles (0 = default)")
		verbose  = flag.Bool("v", false, "print every kernel event")
		timeline = flag.Bool("timeline", false, "print per-task swimlanes after the run")
	)
	flag.Parse()

	var factory committee.Factory
	switch *workload {
	case "quicksort":
		factory = app.QuicksortFactory(*seed)
	case "unbounded-quicksort":
		factory = app.UnboundedQuicksortFactory()
	case "philosophers":
		factory, _ = app.Philosophers(*tasks, *rounds, false)
	case "ordered-philosophers":
		factory, _ = app.Philosophers(*tasks, *rounds, true)
	case "prodcons":
		factory = app.ProducerConsumer(*items)
	case "inversion":
		factory = app.PriorityInversion(100000)
	case "spin":
		factory = app.SpinFactory()
	default:
		fmt.Fprintf(os.Stderr, "pcoresim: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	kcfg := pcore.Config{Faults: pcore.FaultPlan{GCLeakEvery: *gcLeak}}
	if *quantum > 0 {
		kcfg.Quantum = clock.Cycles(*quantum)
	}
	plat, err := platform.New(platform.Config{Factory: factory, Kernel: kcfg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcoresim:", err)
		os.Exit(1)
	}
	defer plat.Shutdown()

	var rec *trace.Recorder
	if *timeline {
		rec = trace.NewRecorder(0)
		rec.Attach(plat)
	} else if *verbose {
		plat.Slave.OnEvent(func(e pcore.Event) {
			fmt.Printf("  [%8d] task=%-2d %-8s %s %s\n", e.At, e.Task, e.Kind, e.Service, e.Detail)
		})
	}

	plat.Master.Spawn("starter", func(ctx *master.Ctx) {
		for logical := uint32(0); logical < uint32(*tasks); logical++ {
			rep, err := plat.Client.Call(ctx, bridge.CodeTC, logical, 0xffffffff)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcoresim: TC %d: %v\n", logical, err)
				return
			}
			if rep.Status != bridge.StatusOK {
				fmt.Fprintf(os.Stderr, "pcoresim: TC %d: %v\n", logical, rep.Status)
				return
			}
		}
	})

	det := detector.New(plat, nil, detector.Options{})
	report := det.Run(*maxSteps)

	snap := plat.Slave.Snapshot()
	fmt.Printf("workload:   %s (%d tasks)\n", *workload, *tasks)
	fmt.Printf("virtual t:  %d cycles over %d steps\n", plat.Now(), plat.Steps())
	fmt.Printf("ctx switch: %d\n", snap.CtxSwitches)
	calls, cycles := plat.Slave.ServiceStats()
	for _, svc := range pcore.TableIServices() {
		if calls[svc] > 0 {
			fmt.Printf("  %-4s calls=%-5d cycles=%d\n", svc, calls[svc], cycles[svc])
		}
	}
	for _, ts := range snap.Tasks {
		fmt.Printf("  task %-2d %-14s state=%-10s prio=%-2d progress=%d\n",
			ts.ID, ts.Name, ts.State, ts.Prio, ts.Progress)
	}
	if rec != nil {
		fmt.Println("timeline (R running, r ready, B blocked, S suspended, T done, X fault):")
		_ = rec.RenderLanes(os.Stdout, 72)
	}
	if report != nil {
		fmt.Println("DETECTED:", report)
		os.Exit(1)
	}
	fmt.Println("clean finish")
}
