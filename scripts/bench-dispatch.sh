#!/bin/sh
# Runs the dispatch wire benchmarks and renders the number that matters
# — HTTP round trips per executed cell on the v1 single-lease wire vs
# the v2 batched wire — into BENCH_dispatch.json. CI runs this and
# commits/refreshes the artifact so the collapse ratio is reviewable in
# the diff; locally:
#
#   scripts/bench-dispatch.sh [benchtime]     # default 100x
#
# Plain go test + awk: no jq, no external deps.
set -eu

benchtime="${1:-100x}"
out="BENCH_dispatch.json"
cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench 'BenchmarkDispatchWire_SingleLease|BenchmarkDispatchWire_Batched16' \
	-benchtime "$benchtime" ./internal/dispatch)

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)           # strip the -GOMAXPROCS suffix
		ns[name] = $3
		for (i = 5; i + 1 <= NF; i += 2) {  # after "ns/op": "value unit" pairs
			unit = $(i + 1)
			gsub(/\//, "_per_", unit)
			metric[name "\x1f" unit] = $i
			units[unit] = 1
		}
		order[++n] = name
	}
	END {
		if (n == 0) { print "no benchmark output" > "/dev/stderr"; exit 1 }
		printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {", benchtime
		for (i = 1; i <= n; i++) {
			name = order[i]
			printf "%s\n    \"%s\": {\"ns_per_op\": %s", (i > 1 ? "," : ""), name, ns[name]
			for (u in units)
				if ((name "\x1f" u) in metric)
					printf ", \"%s\": %s", u, metric[name "\x1f" u]
			printf "}"
		}
		print "\n  }"
		print "}"
	}
' > "$out"

echo "wrote $out:"
cat "$out"
