#!/bin/sh
# Runs the Store v2 write-path benchmarks and renders the numbers that
# matter — ns/op plus the per-cell round-trip and fsync counts the
# batching work collapses — into BENCH_store.json. CI runs this and
# commits/refreshes the artifact so the collapse ratio is reviewable in
# the diff; locally:
#
#   scripts/bench-store.sh [benchtime]     # default 100x
#
# Plain go test + awk: no jq, no external deps.
set -eu

benchtime="${1:-100x}"
out="BENCH_store.json"
cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench 'BenchmarkStorePut$|BenchmarkStorePutBatch|BenchmarkRemotePut_Single|BenchmarkRemotePut_Batched' \
	-benchtime "$benchtime" ./internal/store)

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)           # strip the -GOMAXPROCS suffix
		ns[name] = $3
		for (i = 5; i + 1 <= NF; i += 2) {  # after "ns/op": "value unit" pairs
			unit = $(i + 1)
			gsub(/\//, "_per_", unit)
			metric[name "\x1f" unit] = $i
			units[unit] = 1
		}
		order[++n] = name
	}
	END {
		if (n == 0) { print "no benchmark output" > "/dev/stderr"; exit 1 }
		printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {", benchtime
		for (i = 1; i <= n; i++) {
			name = order[i]
			printf "%s\n    \"%s\": {\"ns_per_op\": %s", (i > 1 ? "," : ""), name, ns[name]
			for (u in units)
				if ((name "\x1f" u) in metric)
					printf ", \"%s\": %s", u, metric[name "\x1f" u]
			printf "}"
		}
		print "\n  }"
		print "}"
	}
' > "$out"

echo "wrote $out:"
cat "$out"
