package ptest

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPublicRunQuickstart(t *testing.T) {
	out, err := Run(Config{
		RE:      PCoreRE,
		PD:      PCoreDistribution(),
		N:       4,
		S:       10,
		Op:      OpRoundRobin,
		Seed:    1,
		Factory: SpinFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bug != nil {
		t.Fatalf("bug %v", out.Bug)
	}
	if out.CommandsIssued != 40 {
		t.Fatalf("commands %d", out.CommandsIssued)
	}
}

func TestPublicPFA(t *testing.T) {
	p, err := NewPFA(Figure3RE, Figure3Distribution())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() == 0 {
		t.Fatal("empty PFA")
	}
	if _, err := NewPFA("(((", nil); err == nil {
		t.Fatal("bad RE accepted")
	}
}

func TestPublicCampaignFindsCrash(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{
		Base: Config{
			RE: PCoreRE, PD: PCoreDistribution(),
			N: 8, S: 16, Op: OpRoundRobin, Seed: 1,
			Factory: QuicksortFactory(5),
			Kernel:  KernelConfig{GCEvery: 4, Faults: FaultPlan{GCLeakEvery: 2}},
		},
		Trials: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) == 0 || res.Bugs[0].Kind != BugCrash {
		t.Fatalf("bugs %v", res.Bugs)
	}
}

func TestPublicBaselines(t *testing.T) {
	cOut, err := RunContest(ContestConfig{
		Seed: 1, Tasks: 2, Factory: QuicksortFactory(9), MaxSteps: 500000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cOut.Bug != nil {
		t.Fatalf("contest clean run found %v", cOut.Bug)
	}
	chOut, err := RunChess(ChessConfig{
		Run: Config{
			RE: PCoreRE, PD: PCoreDistribution(),
			Factory: SpinFactory(),
		},
		Sources:         [][]string{{"TC", "TD"}, {"TC", "TY"}},
		PreemptionBound: 1,
		ExploreAll:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if chOut.Schedules == 0 {
		t.Fatal("chess executed nothing")
	}
}

func TestPublicOps(t *testing.T) {
	if len(Ops()) != 5 {
		t.Fatalf("ops %v", Ops())
	}
	names := map[string]bool{}
	for _, op := range Ops() {
		names[op.String()] = true
	}
	for _, want := range []string{"roundrobin", "random", "cyclic", "priority", "sequential"} {
		if !names[want] {
			t.Errorf("missing op %s", want)
		}
	}
}

func TestPublicAdaptiveCampaign(t *testing.T) {
	res, err := RunAdaptiveCampaign(AdaptiveCampaignConfig{
		Base: Config{
			RE: PCoreRE, PD: PCoreDistribution(),
			N: 3, S: 8, Op: OpRoundRobin, Seed: 1,
			Factory: SpinFactory(),
		},
		Trials:    3,
		KeepGoing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 3 || len(res.TransitionCoverage) != 3 {
		t.Fatalf("res %+v", res.CampaignResult)
	}
}

func TestPublicReproRoundTrip(t *testing.T) {
	cfg := Config{
		RE: PCoreRE, PD: PCoreDistribution(),
		N: 8, S: 16, Op: OpRoundRobin, Seed: 1,
		Factory: QuicksortFactory(5),
		Kernel:  KernelConfig{GCEvery: 4, Faults: FaultPlan{GCLeakEvery: 2}},
	}
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bug == nil {
		t.Fatal("no bug to reproduce")
	}
	f := NewReproFile(cfg, out, "quicksort", 5)
	var buf strings.Builder
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRepro(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := loaded.Run(QuicksortFactory(5))
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Bug == nil || replayed.Bug.At != out.Bug.At {
		t.Fatalf("replay mismatch: %v vs %v", replayed.Bug, out.Bug)
	}
}

func TestPublicLearnDistribution(t *testing.T) {
	d, res, err := LearnDistribution(PCoreRE, [][]string{
		{"TC", "TCH", "TD"},
		{"TC", "TS", "TR", "TY"},
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces != 2 {
		t.Fatalf("learn result %+v", res)
	}
	if _, err := NewPFA(PCoreRE, d); err != nil {
		t.Fatal(err)
	}
}

func TestPublicReportRendering(t *testing.T) {
	factory, _ := Philosophers(3, 100000, false)
	out, err := Run(Config{
		RE: "TC (TS TR)+ TD$",
		PD: Distribution{
			StartLabel: {"TC": 1},
			"TC":       {"TS": 1},
			"TS":       {"TR": 1},
			"TR":       {"TS": 1, "TD": 0},
		},
		N: 3, S: 41, Op: OpCyclic, Seed: 0, CommandGap: 100,
		Factory: factory,
		Kernel:  KernelConfig{Quantum: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bug == nil || out.Bug.Kind != BugDeadlock {
		t.Fatalf("bug %v", out.Bug)
	}
	if !strings.Contains(out.Bug.String(), "deadlock") {
		t.Fatalf("report %q", out.Bug.String())
	}
}

func TestPublicJobServerRoundtrip(t *testing.T) {
	st, err := OpenStore(StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewJobServer(JobServerConfig{Workers: 1, QueueCap: 4, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cli := NewClient(ts.URL)
	spec := `{
		"name": "facade",
		"trials": 1,
		"max_steps": 100000,
		"workloads": [{"name": "spin"}],
		"ops": ["roundrobin"],
		"points": [{"n": 2, "s": 4}],
		"tools": [{"name": "adaptive"}]
	}`
	info, err := cli.Submit(context.Background(), strings.NewReader(spec), 0)
	if err != nil {
		t.Fatal(err)
	}
	final, err := cli.Watch(context.Background(), info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobDone {
		t.Fatalf("job did not finish: %+v", final)
	}
	rep, err := cli.Report(context.Background(), info.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("report cells: %+v", rep.Cells)
	}
}
