// Package ptest is the public API of the pTest reproduction: an adaptive
// stress-testing tool for concurrent software on (simulated) embedded
// multicore processors, after Chang, Hsieh and Lee, "pTest: An Adaptive
// Testing Tool for Concurrent Software on Embedded Multicore
// Processors", DATE 2009.
//
// The flow mirrors the paper's Algorithm 1. A service regular expression
// and a probability distribution define a probabilistic finite-state
// automaton (PFA); the pattern generator samples n test patterns of size
// s from it; the pattern merger interleaves them under a selectable op;
// the committer issues the merged pattern as remote commands to the
// simulated pCore slave kernel while the bug detector watches for
// crashes, deadlocks, hangs, livelock and starvation:
//
//	out, err := ptest.Run(ptest.Config{
//	    RE:      ptest.PCoreRE,
//	    PD:      ptest.PCoreDistribution(),
//	    N:       16,
//	    S:       24,
//	    Op:      ptest.OpRoundRobin,
//	    Seed:    1,
//	    Factory: ptest.QuicksortFactory(42),
//	})
//	if out.Bug != nil {
//	    fmt.Println(out.Bug)       // classified failure
//	    fmt.Print(out.Bug.Journal) // Definition 2 records for replay
//	}
//
// Every run is deterministic in (Config, Seed); a bug report plus its
// seed reproduces the failure exactly.
//
// Campaigns shard across CPUs: set CampaignConfig.Parallelism (or the
// equivalent field on the baseline configs) to run trials on a worker
// pool. Trials are independent in (Config, Seed), so a parallel
// campaign produces trial-for-trial identical outcomes to the
// sequential one — including the stopping point when the first bug
// cancels the rest. Workloads whose factory closes over shared state
// (philosopher forks, producer/consumer buffers) must supply
// Config.NewFactory so each trial's platform gets a fresh instance.
package ptest

import (
	"context"
	"io"

	"repro/internal/app"
	"repro/internal/chess"
	"repro/internal/committee"
	"repro/internal/contest"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dispatch"
	"repro/internal/eventlog"
	"repro/internal/pattern"
	"repro/internal/pcore"
	"repro/internal/pfa"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/suite"
	"repro/internal/tenant"
	"repro/internal/tool"
	"repro/internal/workload"
)

// Config configures one adaptive test run; see core.Config for the full
// field documentation. The zero value of every optional field takes a
// sensible default.
type Config = core.Config

// Outcome is the result of one run: detected bug (if any), coverage,
// patterns, journal and costs.
type Outcome = core.Outcome

// CampaignConfig repeats runs across seeds; Parallelism shards the
// trials across a worker pool with bit-identical results.
type CampaignConfig = core.CampaignConfig

// CampaignResult aggregates a campaign.
type CampaignResult = core.CampaignResult

// Run executes Algorithm 1 once: generate, merge, commit, detect.
func Run(cfg Config) (*Outcome, error) { return core.AdaptiveTest(cfg) }

// RunCampaign repeats Run over consecutive seeds.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return core.RunCampaign(cfg)
}

// RunMerged executes an explicit merged pattern (expert use: replay and
// systematic exploration).
func RunMerged(cfg Config, merged Merged) (*Outcome, error) {
	return core.RunMerged(cfg, merged)
}

// AdaptiveCampaignConfig configures a coverage-guided campaign: between
// trials the distribution is reweighted toward PFA transitions the
// executed commands have not exercised yet.
type AdaptiveCampaignConfig = core.AdaptiveCampaignConfig

// AdaptiveCampaignResult extends the campaign result with the coverage
// trajectory and final refined distribution.
type AdaptiveCampaignResult = core.AdaptiveCampaignResult

// NoRefinement disables refinement in an adaptive campaign (control arm).
const NoRefinement = core.NoRefinement

// RunAdaptiveCampaign executes the coverage-guided refinement loop.
func RunAdaptiveCampaign(cfg AdaptiveCampaignConfig) (*AdaptiveCampaignResult, error) {
	return core.RunAdaptiveCampaign(cfg)
}

// --- pattern generation ---------------------------------------------------

// Distribution assigns conditional next-service probabilities, keyed by
// the previously executed service (StartLabel for the initial state).
type Distribution = pfa.Distribution

// StartLabel addresses the PFA's initial state in a Distribution.
const StartLabel = pfa.StartLabel

// PFA is the probabilistic finite-state automaton of Definition 1.
type PFA = pfa.PFA

// NewPFA compiles a service regular expression and attaches the
// distribution (nil = uniform over legal transitions).
func NewPFA(re string, d Distribution) (*PFA, error) { return pfa.FromRegex(re, d) }

// GenOptions tunes Algorithm 2's pattern generation.
type GenOptions = pfa.GenOptions

// Pattern is one generated test pattern.
type Pattern = pfa.Pattern

// The paper's canonical automata.
const (
	// PCoreRE is equation (2): the pCore task-management life cycle.
	PCoreRE = pfa.PCoreRE
	// Figure3RE is the didactic expression of Figure 3.
	Figure3RE = pfa.Figure3RE
)

// PCoreDistribution returns Figure 5's transition probabilities.
func PCoreDistribution() Distribution { return pfa.PCoreDistribution() }

// Figure3Distribution returns Figure 3's transition probabilities.
func Figure3Distribution() Distribution { return pfa.Figure3Distribution() }

// --- pattern merging --------------------------------------------------------

// Op selects the pattern-merger strategy.
type Op = pattern.Op

// Merger strategies (Algorithm 1's op parameter).
const (
	OpRoundRobin = pattern.OpRoundRobin
	OpRandom     = pattern.OpRandom
	OpCyclic     = pattern.OpCyclic
	OpPriority   = pattern.OpPriority
	OpSequential = pattern.OpSequential
)

// Ops lists every merger strategy.
func Ops() []Op { return pattern.Ops() }

// Merged is the final interleaved test pattern.
type Merged = pattern.Merged

// --- failure reports ----------------------------------------------------------

// Report is a detected failure with its reproduction dump.
type Report = detector.Report

// BugKind classifies failures.
type BugKind = detector.BugKind

// Failure classes.
const (
	BugCrash       = detector.BugCrash
	BugDeadlock    = detector.BugDeadlock
	BugHang        = detector.BugHang
	BugLivelock    = detector.BugLivelock
	BugStarvation  = detector.BugStarvation
	BugMasterPanic = detector.BugMasterPanic
)

// --- slave workloads -----------------------------------------------------------

// Factory supplies workload bodies for logical tasks.
type Factory = committee.Factory

// CreateSpec describes one slave task to create.
type CreateSpec = committee.CreateSpec

// SpinFactory returns idle control-loop tasks.
func SpinFactory() Factory { return app.SpinFactory() }

// QuicksortFactory returns the case-study-1 stress workload: each task
// sorts 128 2-byte integers within a 512-byte stack.
func QuicksortFactory(seed uint64) Factory { return app.QuicksortFactory(seed) }

// Philosophers returns the case-study-2 workload: n philosopher tasks
// over n mutually exclusive forks; ordered=false is the deadlock-prone
// variant.
func Philosophers(n, rounds int, ordered bool) (Factory, []*Mutex) {
	return app.Philosophers(n, rounds, ordered)
}

// ProducerConsumer returns the lost-wakeup workload.
func ProducerConsumer(items int) Factory { return app.ProducerConsumer(items) }

// PriorityInversion returns the starvation workload.
func PriorityInversion(hogBursts int) Factory { return app.PriorityInversion(hogBursts) }

// --- slave kernel configuration ---------------------------------------------------

// KernelConfig configures the simulated pCore slave.
type KernelConfig = pcore.Config

// FaultPlan seeds simulated kernel bugs (GC leak, lost resume, ...).
type FaultPlan = pcore.FaultPlan

// Mutex is a slave-side lock (exposed for workload assertions).
type Mutex = pcore.Mutex

// --- baselines ----------------------------------------------------------------------

// ContestConfig configures the ConTest-style noise-injection baseline.
type ContestConfig = contest.Config

// RunContest executes one noise-injection trial.
func RunContest(cfg ContestConfig) (*contest.Outcome, error) { return contest.Run(cfg) }

// RunContestCampaign repeats RunContest over consecutive seeds.
func RunContestCampaign(cfg ContestConfig, trials int, keepGoing bool) (*contest.CampaignResult, error) {
	return contest.RunCampaign(cfg, trials, keepGoing)
}

// ChessConfig configures the CHESS-style systematic explorer.
type ChessConfig = chess.Config

// RunChess executes a preemption-bounded systematic exploration.
func RunChess(cfg ChessConfig) (*chess.Result, error) { return chess.Explore(cfg) }

// --- profiling and reproduction -------------------------------------------

// ProfileCollector taps a committee's executed-command stream so a
// probability distribution can be learned from real usage.
type ProfileCollector = profile.Collector

// NewProfileCollector returns an empty profiling collector.
func NewProfileCollector() *ProfileCollector { return profile.NewCollector() }

// LearnDistribution fits service traces against an expression, returning
// the conditional next-service distribution with Laplace smoothing.
func LearnDistribution(re string, traces [][]string, smoothing float64) (Distribution, pfa.LearnResult, error) {
	return profile.Learn(re, traces, smoothing)
}

// ReproFile is a serialized failing run: the exact merged schedule plus
// platform configuration, re-executable bit-identically.
type ReproFile = replay.File

// NewReproFile captures a finished run for later replay; workload names
// the factory so the replayer can reconstruct it.
func NewReproFile(cfg Config, out *Outcome, workload string, workloadSeed uint64) *ReproFile {
	return replay.FromOutcome(cfg, out, workload, workloadSeed)
}

// LoadRepro reads a reproduction file.
func LoadRepro(r io.Reader) (*ReproFile, error) { return replay.Load(r) }

// --- suite orchestration ---------------------------------------------------

// SuiteSpec is the declarative campaign matrix: workloads × merge ops ×
// (n,s) points × PD variants × tools, expanded into a deterministic run
// plan and executed through the campaign engine.
type SuiteSpec = suite.Spec

// SuitePoint is one (n, s) matrix coordinate.
type SuitePoint = suite.Point

// SuiteReport is the aggregated machine-readable result of a suite run.
type SuiteReport = report.Report

// CampaignSummary is the tool-agnostic result of one campaign — what a
// registered Tool's Run returns and suite reports aggregate.
type CampaignSummary = report.CampaignSummary

// ParseSuiteSpec decodes, defaults and validates a matrix spec.
func ParseSuiteSpec(r io.Reader) (*SuiteSpec, error) { return suite.Parse(r) }

// RunSuite executes every cell of the spec; when jsonl is non-nil each
// completed cell streams to it as one JSON line in plan order.
func RunSuite(spec *SuiteSpec, jsonl io.Writer) (*SuiteReport, error) {
	return suite.Run(spec, jsonl)
}

// CompareReports diffs a baseline report against a new one and returns
// the regressions beyond the thresholds — the CI gate's core.
func CompareReports(oldR, newR *SuiteReport, th report.Thresholds) *report.Comparison {
	return report.Compare(oldR, newR, th)
}

// SuiteOptions tunes RunSuiteContext beyond the spec: the
// content-addressed result store, a custom executor, and a scoped
// event emitter for per-cell observability.
type SuiteOptions = suite.Options

// ErrSuiteInterrupted wraps out of RunSuiteContext when its context is
// cancelled mid-sweep; the accompanying report is the completed
// plan-order prefix, marked Interrupted.
var ErrSuiteInterrupted = suite.ErrInterrupted

// RunSuiteContext is RunSuite with cancellation and cell memoization.
func RunSuiteContext(ctx context.Context, spec *SuiteSpec, jsonl io.Writer, opts SuiteOptions) (*SuiteReport, error) {
	return suite.RunContext(ctx, spec, jsonl, opts)
}

// --- tool & workload registries --------------------------------------------

// Tool is one pluggable scheduling-perturbation strategy: validation,
// execution-time defaults, labeling, axis collapsing and the campaign
// runner behind one suite-matrix tool name. Register an implementation
// and it is immediately usable in suite specs, ptestd jobs, the result
// store and `ptest run -tool` — no dispatch-site edits anywhere.
type Tool = tool.Tool

// ToolSpec is a tool's declarative form in a suite matrix (name plus
// knobs). Its canonical JSON is hashed into cell-identity keys, so the
// struct only ever grows append-only omitempty fields.
type ToolSpec = tool.Spec

// ToolEnv is the resolved execution environment handed to a Tool's Run.
type ToolEnv = tool.Env

// ToolAxes declares which matrix axes a tool consumes; unconsumed axes
// collapse during expansion instead of multiplying identical cells.
type ToolAxes = tool.Axes

// RegisterTool adds a tool to the registry (panics on a duplicate
// name, as registration is an init-time act).
func RegisterTool(t Tool) { tool.Register(t) }

// ToolNames lists the registered tool names, sorted.
func ToolNames() []string { return tool.Names() }

// Tools returns the registered tools sorted by name.
func Tools() []Tool { return tool.Registered() }

// WorkloadSpec is a workload's declarative form in a suite matrix. Like
// ToolSpec it is part of the cell-identity cache contract.
type WorkloadSpec = workload.Spec

// WorkloadBuilder constructs a per-trial factory constructor for a
// defaulted workload spec; n is the cell's task count.
type WorkloadBuilder = workload.Builder

// WorkloadOption tunes a workload registration.
type WorkloadOption = workload.Option

// WorkloadDataSeeded marks a registered workload as consuming
// WorkloadSpec.Seed as its data seed (like quicksort's input).
func WorkloadDataSeeded() WorkloadOption { return workload.DataSeeded() }

// RegisterWorkload adds a workload under name (panics on a duplicate).
func RegisterWorkload(name, doc string, b WorkloadBuilder, opts ...WorkloadOption) {
	workload.Register(name, doc, b, opts...)
}

// WorkloadNames lists the registered workload names, sorted.
func WorkloadNames() []string { return workload.Names() }

// --- result store and job server -------------------------------------------

// CellStore is the pluggable result-store seam: anything answering
// content-addressed Get/Put (plus the telemetry methods) slots into
// SuiteOptions.Store, JobServerConfig.Store and the rest of the stack.
// ResultStore and RemoteStore are the built-in implementations.
type CellStore = store.CellStore

// StoreCompactor is the optional garbage-collection face of a
// CellStore; type-assert a CellStore to it to trigger compaction.
type StoreCompactor = store.Compactor

// StorePolicyCompactor is the retention face of a compacting store:
// one compaction pass under an explicit StoreGCPolicy, overriding the
// configured one.
type StorePolicyCompactor = store.PolicyCompactor

// StoreBatchPutter is the optional batched-write face of a CellStore:
// the local store commits a whole batch under one fsync, the remote
// client coalesces it into one round trip.
type StoreBatchPutter = store.BatchPutter

// StoreFlusher is the optional write-back face of a CellStore that
// queues writes (the remote client's write-through batcher); flush at
// job end so no computed cell outlives its job unpersisted.
type StoreFlusher = store.Flusher

// StoreCellEntry is one (key, cell) pair of a batched put.
type StoreCellEntry = store.CellEntry

// StoreGCPolicy is the result-store retention policy compaction
// applies: entries past MaxAge since creation or MaxIdle since last
// hit expire, as do records tagged with a schema below SchemaBelow.
// The zero policy keeps everything (pure compaction).
type StoreGCPolicy = store.GCPolicy

// StoreCompactResult describes one compaction pass: segments and bytes
// before/after, bytes reclaimed, live entries rewritten, plus what the
// GC policy expired and how many v1 records migrated to v2.
type StoreCompactResult = store.CompactResult

// ResultStore is the local content-addressed cell store: results keyed
// by the canonical cell-identity hash, an in-memory LRU in front of an
// append-only on-disk segment log with compaction/GC. A cell computed
// once — by Run variants, RunSuite, or a ptestd job — is never
// recomputed.
type ResultStore = store.Store

// StoreConfig sizes a ResultStore; the zero value is a memory-only
// store with default capacity. AutoCompactMinBytes arms background
// compaction.
type StoreConfig = store.Config

// OpenStore opens (or creates) a result store.
func OpenStore(cfg StoreConfig) (*ResultStore, error) { return store.Open(cfg) }

// RemoteStore is the network-backed CellStore: a client over a ptestd's
// /api/v1/cells endpoints with an in-process LRU front and single-flight
// fetch deduplication, so a worker fleet shares one cache and computes
// each cell once, ever.
type RemoteStore = store.Remote

// RemoteStoreConfig points a RemoteStore at a serving ptestd.
type RemoteStoreConfig = store.RemoteConfig

// OpenRemoteStore builds a client for a ptestd's shared cell cache.
func OpenRemoteStore(cfg RemoteStoreConfig) (*RemoteStore, error) { return store.OpenRemote(cfg) }

// ShardedStore spreads the fleet cache over several hub ptestds by
// rendezvous hashing: every client independently agrees which hub owns
// which cell key, each shard keeps its own breaker and write-through
// batcher, and a dead hub degrades only its slice of the key space.
type ShardedStore = store.Sharded

// ShardedStoreConfig lists the hub base URLs (one shard each) plus the
// per-shard wire knobs and the optional hedged-read delay.
type ShardedStoreConfig = store.ShardedConfig

// OpenShardedStore builds a sharded client over several hub ptestds.
func OpenShardedStore(cfg ShardedStoreConfig) (*ShardedStore, error) { return store.OpenSharded(cfg) }

// JobServer is ptestd: suite specs over HTTP onto a bounded priority
// queue, a worker pool over the campaign engine, per-job SSE progress,
// and the shared ResultStore. Serve Handler() on any net/http server.
type JobServer = server.Server

// JobServerConfig sizes a JobServer.
type JobServerConfig = server.Config

// NewJobServer builds a daemon (workers are started with Start, drained
// with Drain).
func NewJobServer(cfg JobServerConfig) (*JobServer, error) { return server.New(cfg) }

// Client talks to a running ptestd over HTTP: submit suite specs,
// list/cancel jobs, stream plan-order progress, fetch reports.
type Client = server.Client

// ClientOption configures a Client at construction.
type ClientOption = server.ClientOption

// Client construction options: WithAPIKey authenticates against a hub
// running -auth-keys, WithHTTPClient swaps the transport, and
// WithRetryPolicy tunes the transient-error retry loop.
var (
	WithAPIKey      = server.WithAPIKey
	WithHTTPClient  = server.WithHTTPClient
	WithRetryPolicy = server.WithRetryPolicy
)

// NewClient builds a client for a ptestd base URL.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	return server.NewClient(baseURL, opts...)
}

// APIError is the decoded form of ptestd's uniform JSON error envelope
// ({"error":{"code","message","retry_after_s"}}); match broad classes
// with errors.Is against the sentinels below, or errors.As to inspect
// the status, code, and Retry-After duration.
type APIError = server.APIError

// Sentinel targets for errors.Is on client call errors.
var (
	ErrUnauthorized  = server.ErrUnauthorized
	ErrRateLimited   = server.ErrRateLimited
	ErrQuotaExceeded = server.ErrQuotaExceeded
)

// TenancyConfig is a JobServer's multi-tenant policy (set it on
// JobServerConfig.Tenancy): keyring auth, per-tenant rate limits, and
// in-flight/backlog caps. The zero value is anonymous mode — the server
// behaves exactly like a pre-tenant one.
type TenancyConfig = tenant.Config

// Keyring maps API keys to named, role-carrying tenants.
type Keyring = tenant.Keyring

// TenantRole is a tenant's scheduling and privilege class.
type TenantRole = tenant.Role

// Tenant roles: admins outrank and bypass limits, batch yields to
// everyone else.
const (
	RoleAdmin   = tenant.RoleAdmin
	RoleDefault = tenant.RoleDefault
	RoleBatch   = tenant.RoleBatch
)

// ParseKeyring reads `key tenant role` lines ('#' comments, blank lines
// skipped); LoadKeyfile does the same from a file path.
var (
	ParseKeyring = tenant.ParseKeyring
	LoadKeyfile  = tenant.LoadKeyfile
)

// JobInfo is the wire state of a submitted job.
type JobInfo = server.JobInfo

// JobStatus is a job's lifecycle state.
type JobStatus = server.JobStatus

// Job lifecycle states.
const (
	JobQueued    = server.JobQueued
	JobRunning   = server.JobRunning
	JobDone      = server.JobDone
	JobFailed    = server.JobFailed
	JobCancelled = server.JobCancelled
)

// --- fleet dispatch ---------------------------------------------------------

// DispatchConfig tunes a JobServer's fleet dispatcher: lease and worker
// TTLs, the per-cell retry budget and backoff, and the work-stealing
// age threshold. The zero value defaults sensibly; set it on
// JobServerConfig.Dispatch.
type DispatchConfig = dispatch.Config

// FleetWorker is one lease-polling cell executor: it registers with a
// hub JobServer, heartbeats, executes granted cells through the
// deterministic suite runner, and reports completions — surviving hub
// loss by finishing in-flight cells and re-registering. `ptest serve
// -hub-url` wraps exactly this type.
type FleetWorker = dispatch.Worker

// FleetWorkerConfig points a FleetWorker at its hub.
type FleetWorkerConfig = dispatch.WorkerConfig

// NewFleetWorker validates the config and builds a worker; Run drives
// it until its context ends.
func NewFleetWorker(cfg FleetWorkerConfig) (*FleetWorker, error) { return dispatch.NewWorker(cfg) }

// FleetWorkerInfo is one row of the hub's fleet membership listing —
// what Client.Workers and `ptest client workers` return.
type FleetWorkerInfo = dispatch.WorkerInfo

// DispatchMetrics snapshots the hub's dispatch counters: registrations,
// leases granted/expired/stolen, retries, completions and local
// fallbacks.
type DispatchMetrics = dispatch.Metrics

// --- fleet observability -----------------------------------------------------

// Event is one structured record in the fleet event log: what happened
// (a dot-hierarchy Type like "lease.granted"), to which job/tenant/
// worker/cell, when, and how long it took. Events are immutable once
// emitted and strictly ordered by Seq.
type Event = eventlog.Event

// EventRecorder is the append-only, bounded event log every ptestd
// subsystem emits into. Build one with NewEventRecorder, set it on
// JobServerConfig.Events; a nil recorder disables observability with
// zero behavioral change.
type EventRecorder = eventlog.Recorder

// EventLogConfig sizes an EventRecorder: ring capacity and an optional
// JSONL sink every event is appended to.
type EventLogConfig = eventlog.Config

// EventFilter narrows event queries: exact or dot-prefix Type match
// ("lease" matches lease.granted), plus Job and Tenant equality.
type EventFilter = eventlog.Filter

// ScopedEvents wraps a recorder with a job/tenant scope, so deep layers
// emit without threading identifiers; suite.Options carries one.
type ScopedEvents = eventlog.Scoped

// NewEventRecorder builds an event recorder.
func NewEventRecorder(cfg EventLogConfig) *EventRecorder { return eventlog.New(cfg) }

// EventsPage is the snapshot answer of GET /api/v1/events — the
// filtered events plus the cursor (LastSeq) for the next poll.
type EventsPage = server.EventsPage

// EventsFilter narrows Client.Events / Client.TailEvents server-side.
type EventsFilter = server.EventsFilter

// ServerHealth is the JSON body of GET /healthz: readiness, build info,
// queue and fleet gauges, store degradation.
type ServerHealth = server.Health
