// Package repro_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (and the ablations its
// future-work section calls for). Each benchmark reports, besides wall
// time, the domain metrics the paper's tables would carry as
// b.ReportMetric values: virtual cycles, commands-to-detection and
// discovery rates. EXPERIMENTS.md records the paper-vs-measured
// comparison for every row printed here.
package repro_test

import (
	"testing"

	"repro/internal/app"
	"repro/internal/chess"
	"repro/internal/contest"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/pattern"
	"repro/internal/pcore"
	"repro/internal/pfa"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/ptest"
)

// --- Table I: pCore kernel services ---------------------------------------

// benchService measures one Table I service through the live kernel:
// each iteration performs the service on a fresh victim task, reporting
// the kernel's virtual-cycle cost alongside host time.
func benchService(b *testing.B, svc pcore.Service) {
	k := pcore.New(pcore.Config{})
	defer k.Shutdown()
	spin := func(c *pcore.Ctx) {
		for {
			c.Yield()
		}
	}
	before := k.Cycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch svc {
		case pcore.SvcTaskCreate:
			id, err := k.CreateTask("bench", 5, spin)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := k.DeleteTask(id); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		case pcore.SvcTaskDelete:
			b.StopTimer()
			id, err := k.CreateTask("bench", 5, spin)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := k.DeleteTask(id); err != nil {
				b.Fatal(err)
			}
		case pcore.SvcTaskSuspend:
			b.StopTimer()
			id, err := k.CreateTask("bench", 5, spin)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := k.SuspendTask(id); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			_ = k.ResumeTask(id)
			_ = k.DeleteTask(id)
			b.StartTimer()
		case pcore.SvcTaskResume:
			b.StopTimer()
			id, err := k.CreateTask("bench", 5, spin)
			if err != nil {
				b.Fatal(err)
			}
			if err := k.SuspendTask(id); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := k.ResumeTask(id); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			_ = k.DeleteTask(id)
			b.StartTimer()
		case pcore.SvcTaskChanprio:
			b.StopTimer()
			id, err := k.CreateTask("bench", 5, spin)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := k.ChangePriority(id, pcore.Priority(2+i%20)); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			_ = k.DeleteTask(id)
			b.StartTimer()
		case pcore.SvcTaskYield:
			b.StopTimer()
			id, err := k.CreateTask("bench", 5, spin)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := k.TerminateTask(id); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	calls, cycles := k.ServiceStats()
	if calls[svc] > 0 {
		b.ReportMetric(float64(cycles[svc])/float64(calls[svc]), "vcycles/op")
	}
	_ = before
}

func BenchmarkTableI_TC(b *testing.B)  { benchService(b, pcore.SvcTaskCreate) }
func BenchmarkTableI_TD(b *testing.B)  { benchService(b, pcore.SvcTaskDelete) }
func BenchmarkTableI_TS(b *testing.B)  { benchService(b, pcore.SvcTaskSuspend) }
func BenchmarkTableI_TR(b *testing.B)  { benchService(b, pcore.SvcTaskResume) }
func BenchmarkTableI_TCH(b *testing.B) { benchService(b, pcore.SvcTaskChanprio) }
func BenchmarkTableI_TY(b *testing.B)  { benchService(b, pcore.SvcTaskYield) }

// --- Figure 1: the introductory deadlock scenario --------------------------

// BenchmarkFigure1_DeadlockScenario runs the bad order of Figure 1 to
// livelock detection, reporting virtual cycles to detection.
func BenchmarkFigure1_DeadlockScenario(b *testing.B) {
	var cyclesToDetect float64
	for i := 0; i < b.N; i++ {
		p, err := platform.New(platform.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := app.Figure1(p, true); err != nil {
			b.Fatal(err)
		}
		det := detector.New(p, nil, detector.Options{CheckEvery: 16, ProgressWindow: 50000})
		r := det.Run(5_000_000)
		if r == nil || r.Kind != detector.BugLivelock {
			b.Fatalf("report %v", r)
		}
		cyclesToDetect += float64(r.At)
		p.Shutdown()
	}
	b.ReportMetric(cyclesToDetect/float64(b.N), "vcycles-to-detect")
}

// --- Figure 3: the simple PFA ----------------------------------------------

// BenchmarkFigure3_SimplePFA measures pattern generation on Figure 3's
// automaton and reports the empirical-vs-expected frequency error.
func BenchmarkFigure3_SimplePFA(b *testing.B) {
	machine, err := pfa.Figure3()
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.New(1)
	h := stats.NewHistogram()
	const size = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pat, err := machine.Generate(rng, size, pfa.DefaultGenOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range pat.Symbols {
			h.Observe(s)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(size), "symbols/op")
	b.ReportMetric(h.MaxAbsFreqError(machine.ExpectedSymbolFreq(size)), "freq-error")
}

// --- Figure 5: the pCore PFA -------------------------------------------------

// BenchmarkFigure5_PCorePFA measures construction plus generation on the
// paper's equation (2) + Figure 5 distribution.
func BenchmarkFigure5_PCorePFA(b *testing.B) {
	b.Run("construct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pfa.PCore(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generate", func(b *testing.B) {
		machine, err := pfa.PCore()
		if err != nil {
			b.Fatal(err)
		}
		rng := stats.New(1)
		h := stats.NewHistogram()
		const size = 64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pat, err := machine.Generate(rng, size, pfa.DefaultGenOptions())
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range pat.Symbols {
				h.Observe(s)
			}
		}
		b.StopTimer()
		b.ReportMetric(h.MaxAbsFreqError(machine.ExpectedSymbolFreq(size)), "freq-error")
	})
}

// --- Case study 1: the 16-task quicksort stress -------------------------------

// BenchmarkCase1_StressGC runs the full adaptive campaign against the
// GC-leak fault, reporting commands and virtual cycles to detection.
func BenchmarkCase1_StressGC(b *testing.B) {
	var cmds, vt float64
	for i := 0; i < b.N; i++ {
		out, err := core.AdaptiveTest(core.Config{
			RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
			N: 16, S: 24, Op: pattern.OpRoundRobin,
			Seed:    uint64(i),
			Factory: app.QuicksortFactory(99),
			Kernel:  pcore.Config{GCEvery: 4, Faults: pcore.FaultPlan{GCLeakEvery: 2}},
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Bug == nil || out.Bug.Kind != detector.BugCrash {
			b.Fatalf("seed %d: bug %v", i, out.Bug)
		}
		cmds += float64(out.CommandsIssued)
		vt += float64(out.Duration)
	}
	b.ReportMetric(cmds/float64(b.N), "cmds-to-crash")
	b.ReportMetric(vt/float64(b.N), "vcycles-to-crash")
}

// BenchmarkCase1_HealthyBaseline is the control: the same stress on a
// healthy kernel completes with no failure.
func BenchmarkCase1_HealthyBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := core.AdaptiveTest(core.Config{
			RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
			N: 16, S: 24, Op: pattern.OpRoundRobin,
			Seed:    uint64(i),
			Factory: app.QuicksortFactory(99),
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Bug != nil {
			b.Fatalf("seed %d: healthy run found %v", i, out.Bug)
		}
	}
}

// --- Case study 2: the dining philosophers --------------------------------------

func suspendResumeStress() pfa.Distribution {
	return pfa.Distribution{
		pfa.StartLabel: {"TC": 1},
		"TC":           {"TS": 1},
		"TS":           {"TR": 1},
		"TR":           {"TS": 1, "TD": 0},
	}
}

// BenchmarkCase2_DiningDeadlock runs the cyclic-stress discovery of the
// philosophers deadlock, reporting commands to detection.
func BenchmarkCase2_DiningDeadlock(b *testing.B) {
	var cmds float64
	found := 0
	for i := 0; i < b.N; i++ {
		factory, _ := app.Philosophers(3, 100000, false)
		out, err := core.AdaptiveTest(core.Config{
			RE: "TC (TS TR)+ TD$", PD: suspendResumeStress(),
			N: 3, S: 41, Op: pattern.OpCyclic,
			Seed: uint64(i), CommandGap: 100,
			Factory: factory,
			Kernel:  pcore.Config{Quantum: 1 << 30},
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Bug != nil && out.Bug.Kind == detector.BugDeadlock {
			found++
			cmds += float64(out.CommandsIssued)
		}
	}
	b.ReportMetric(float64(found)/float64(b.N), "discovery-rate")
	if found > 0 {
		b.ReportMetric(cmds/float64(found), "cmds-to-deadlock")
	}
}

// --- Ablation: merger op comparison ------------------------------------------------

func benchMergerOp(b *testing.B, op pattern.Op) {
	found := 0
	for i := 0; i < b.N; i++ {
		factory, _ := app.Philosophers(3, 100000, false)
		out, err := core.AdaptiveTest(core.Config{
			RE: "TC (TS TR)+ TD$", PD: suspendResumeStress(),
			N: 3, S: 41, Op: op,
			Seed: uint64(i), CommandGap: 100,
			Factory: factory,
			Kernel:  pcore.Config{Quantum: 1 << 30},
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Bug != nil && out.Bug.Kind == detector.BugDeadlock {
			found++
		}
	}
	b.ReportMetric(float64(found)/float64(b.N), "discovery-rate")
}

func BenchmarkAblation_MergerOps_Cyclic(b *testing.B)     { benchMergerOp(b, pattern.OpCyclic) }
func BenchmarkAblation_MergerOps_RoundRobin(b *testing.B) { benchMergerOp(b, pattern.OpRoundRobin) }
func BenchmarkAblation_MergerOps_Random(b *testing.B)     { benchMergerOp(b, pattern.OpRandom) }
func BenchmarkAblation_MergerOps_Sequential(b *testing.B) { benchMergerOp(b, pattern.OpSequential) }

// --- Ablation: distribution sweep ----------------------------------------------------

func benchDistribution(b *testing.B, pd pfa.Distribution) {
	var cmds float64
	found := 0
	for i := 0; i < b.N; i++ {
		out, err := core.AdaptiveTest(core.Config{
			RE: pfa.PCoreRE, PD: pd,
			N: 12, S: 16, Op: pattern.OpRoundRobin,
			Seed:    uint64(i),
			Factory: app.QuicksortFactory(3),
			Kernel:  pcore.Config{GCEvery: 4, Faults: pcore.FaultPlan{GCLeakEvery: 2}},
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Bug != nil && out.Bug.Kind == detector.BugCrash {
			found++
			cmds += float64(out.CommandsIssued)
		}
	}
	b.ReportMetric(float64(found)/float64(b.N), "discovery-rate")
	if found > 0 {
		b.ReportMetric(cmds/float64(found), "cmds-to-crash")
	}
}

func BenchmarkAblation_Distribution_Figure5(b *testing.B) {
	benchDistribution(b, pfa.PCoreDistribution())
}

func BenchmarkAblation_Distribution_Uniform(b *testing.B) {
	benchDistribution(b, nil)
}

func BenchmarkAblation_Distribution_ChurnHeavy(b *testing.B) {
	benchDistribution(b, pfa.Distribution{
		pfa.StartLabel: {"TC": 1},
		"TC":           {"TCH": 0.05, "TS": 0.05, "TD": 0.6, "TY": 0.3},
		"TCH":          {"TCH": 0.1, "TS": 0.1, "TD": 0.5, "TY": 0.3},
		"TS":           {"TR": 1},
		"TR":           {"TCH": 0.1, "TS": 0.1, "TD": 0.5, "TY": 0.3},
	})
}

func BenchmarkAblation_Distribution_ChanprioSkewed(b *testing.B) {
	benchDistribution(b, pfa.Distribution{
		pfa.StartLabel: {"TC": 1},
		"TC":           {"TCH": 0.94, "TS": 0.02, "TD": 0.02, "TY": 0.02},
		"TCH":          {"TCH": 0.94, "TS": 0.02, "TD": 0.02, "TY": 0.02},
		"TS":           {"TR": 1},
		"TR":           {"TCH": 0.94, "TS": 0.02, "TD": 0.02, "TY": 0.02},
	})
}

// --- Ablation: replicated patterns ---------------------------------------------------

// BenchmarkAblation_PatternDedup measures the duplicate rate of raw
// generation at several pattern sizes (the paper's future-work worry)
// and the cost of the dedup that fixes it.
func BenchmarkAblation_PatternDedup(b *testing.B) {
	machine, err := pfa.PCore()
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{2, 4, 8, 16} {
		b.Run(map[int]string{2: "s2", 4: "s4", 8: "s8", 16: "s16"}[size], func(b *testing.B) {
			rng := stats.New(1)
			dups := 0
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pats, err := machine.GenerateSet(rng, 16, size, pfa.DefaultGenOptions())
				if err != nil {
					b.Fatal(err)
				}
				sources := make([][]string, len(pats))
				for j, p := range pats {
					sources[j] = p.Symbols
				}
				_, removed := pattern.Dedup(sources)
				dups += removed
				total += len(pats)
			}
			b.StopTimer()
			if total > 0 {
				b.ReportMetric(float64(dups)/float64(total), "dup-rate")
			}
		})
	}
}

// --- Ablation: fault-coverage matrix ---------------------------------------------------

// BenchmarkAblation_FaultMatrix measures pTest's detection of each
// seeded fault class (the paper's unverified "fault coverage").
func BenchmarkAblation_FaultMatrix(b *testing.B) {
	type row struct {
		name string
		cfg  func(seed uint64) core.Config
		want detector.BugKind
	}
	rows := []row{
		{"gc-leak", func(seed uint64) core.Config {
			return core.Config{
				RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
				N: 12, S: 16, Op: pattern.OpRoundRobin, Seed: seed,
				Factory: app.QuicksortFactory(3),
				Kernel:  pcore.Config{GCEvery: 4, Faults: pcore.FaultPlan{GCLeakEvery: 2}},
			}
		}, detector.BugCrash},
		{"stack-overflow", func(seed uint64) core.Config {
			return core.Config{
				RE: "TC TD$", N: 1, S: 1, Op: pattern.OpSequential, Seed: seed,
				Factory: app.UnboundedQuicksortFactory(),
			}
		}, detector.BugCrash},
		{"deadlock", func(seed uint64) core.Config {
			factory, _ := app.Philosophers(3, 100000, false)
			return core.Config{
				RE: "TC (TS TR)+ TD$", PD: suspendResumeStress(),
				N: 3, S: 41, Op: pattern.OpCyclic, Seed: seed, CommandGap: 100,
				Factory: factory,
				Kernel:  pcore.Config{Quantum: 1 << 30},
			}
		}, detector.BugDeadlock},
		{"lost-resume", func(seed uint64) core.Config {
			return core.Config{
				RE: "TC (TS TR)+ TD$", PD: suspendResumeStress(),
				N: 2, S: 21, Op: pattern.OpRoundRobin, Seed: seed,
				Factory: app.SpinFactory(),
				Kernel:  pcore.Config{Faults: pcore.FaultPlan{DropResumeEvery: 3}},
			}
		}, detector.BugHang},
		{"priority-inversion", func(seed uint64) core.Config {
			return core.Config{
				RE: "TC TD$", N: 3, S: 1, Op: pattern.OpSequential, Seed: seed,
				Factory:  app.PriorityInversion(100000),
				Detector: detector.Options{ProgressWindow: 50000},
			}
		}, detector.BugStarvation},
	}
	for _, r := range rows {
		b.Run(r.name, func(b *testing.B) {
			found := 0
			for i := 0; i < b.N; i++ {
				out, err := core.AdaptiveTest(r.cfg(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				if out.Bug != nil && out.Bug.Kind == r.want {
					found++
				}
			}
			b.ReportMetric(float64(found)/float64(b.N), "detection-rate")
		})
	}
}

// --- Ablation: stress density (command gap) --------------------------------------------

// benchStressDensity measures philosophers-deadlock discovery as a
// function of the inter-command gap: too dense and the slave never runs
// between perturbations, too sparse and perturbations decorrelate.
func benchStressDensity(b *testing.B, gap int) {
	found := 0
	for i := 0; i < b.N; i++ {
		factory, _ := app.Philosophers(3, 100000, false)
		out, err := core.AdaptiveTest(core.Config{
			RE: "TC (TS TR)+ TD$", PD: suspendResumeStress(),
			N: 3, S: 41, Op: pattern.OpCyclic,
			Seed: uint64(i), CommandGap: gap,
			Factory: factory,
			Kernel:  pcore.Config{Quantum: 1 << 30},
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Bug != nil && out.Bug.Kind == detector.BugDeadlock {
			found++
		}
	}
	b.ReportMetric(float64(found)/float64(b.N), "discovery-rate")
}

func BenchmarkAblation_StressDensity_Gap10(b *testing.B)   { benchStressDensity(b, 10) }
func BenchmarkAblation_StressDensity_Gap100(b *testing.B)  { benchStressDensity(b, 100) }
func BenchmarkAblation_StressDensity_Gap400(b *testing.B)  { benchStressDensity(b, 400) }
func BenchmarkAblation_StressDensity_Gap1500(b *testing.B) { benchStressDensity(b, 1500) }

// --- Ablation: coverage-guided refinement ------------------------------------------------

// BenchmarkAblation_Refinement compares the coverage reached from a
// skewed starting distribution with and without between-trial
// refinement.
func BenchmarkAblation_Refinement(b *testing.B) {
	skewed := pfa.Distribution{
		pfa.StartLabel: {"TC": 1},
		"TC":           {"TCH": 0.997, "TS": 0.001, "TD": 0.001, "TY": 0.001},
		"TCH":          {"TCH": 0.997, "TS": 0.001, "TD": 0.001, "TY": 0.001},
		"TS":           {"TR": 1},
		"TR":           {"TCH": 0.997, "TS": 0.001, "TD": 0.001, "TY": 0.001},
	}
	for _, mode := range []struct {
		name  string
		alpha float64
	}{{"adaptive", 0.8}, {"fixed", core.NoRefinement}} {
		b.Run(mode.name, func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				res, err := core.RunAdaptiveCampaign(core.AdaptiveCampaignConfig{
					Base: core.Config{
						RE: pfa.PCoreRE, PD: skewed,
						N: 4, S: 10, Op: pattern.OpRoundRobin, Seed: uint64(3 + i),
						Factory: app.SpinFactory(),
					},
					Trials: 8, Alpha: mode.alpha, KeepGoing: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				cov += res.TransitionCoverage[len(res.TransitionCoverage)-1]
			}
			b.ReportMetric(cov/float64(b.N), "final-transition-cov")
		})
	}
}

// --- Baselines ----------------------------------------------------------------------------

// BenchmarkBaseline_ContestPhilosophers measures the noise-injection
// baseline on the philosophers deadlock.
func BenchmarkBaseline_ContestPhilosophers(b *testing.B) {
	found := 0
	for i := 0; i < b.N; i++ {
		factory, _ := app.Philosophers(3, 2000, false)
		out, err := contest.Run(contest.Config{
			Seed: uint64(i), NoiseP: 0.3, Tasks: 3, Factory: factory,
			Kernel: pcore.Config{Quantum: 1 << 30},
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Bug != nil && out.Bug.Kind == detector.BugDeadlock {
			found++
		}
	}
	b.ReportMetric(float64(found)/float64(b.N), "discovery-rate")
}

// BenchmarkBaseline_ContestGCFault shows the baseline's blind spot: no
// create/delete churn, so the GC fault stays hidden.
func BenchmarkBaseline_ContestGCFault(b *testing.B) {
	found := 0
	for i := 0; i < b.N; i++ {
		out, err := contest.Run(contest.Config{
			Seed: uint64(i), NoiseP: 0.3, Tasks: 8,
			Factory: app.QuicksortFactory(3),
			Kernel:  pcore.Config{GCEvery: 4, Faults: pcore.FaultPlan{GCLeakEvery: 2}},
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Bug != nil && out.Bug.Kind == detector.BugCrash {
			found++
		}
	}
	b.ReportMetric(float64(found)/float64(b.N), "discovery-rate")
}

// BenchmarkBaseline_ChessOrphanLock measures the systematic explorer on
// the delete-under-stress schedule space of two philosophers. This is a
// documented negative result: the orphaned-lock window is a property of
// continuous timing, invisible to command-order enumeration — expect a
// discovery rate of 0 over the exhausted bound-2 space (contrast with
// pTest's randomized merger, which finds the anomaly; see Case 2).
func BenchmarkBaseline_ChessOrphanLock(b *testing.B) {
	var schedules float64
	found := 0
	for i := 0; i < b.N; i++ {
		factory, _ := app.Philosophers(2, 100000, false)
		res, err := chess.Explore(chess.Config{
			Run: core.Config{
				RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
				Factory:    factory,
				Kernel:     pcore.Config{Quantum: 1 << 30},
				CommandGap: 100,
			},
			Sources: [][]string{
				{"TC", "TS", "TR", "TD"},
				{"TC", "TS", "TR", "TD"},
			},
			PreemptionBound: 2,
			ExploreAll:      true,
		})
		if err != nil {
			b.Fatal(err)
		}
		schedules += float64(res.Schedules)
		if len(res.Bugs) > 0 {
			found++
		}
	}
	b.ReportMetric(schedules/float64(b.N), "schedules")
	b.ReportMetric(float64(found)/float64(b.N), "discovery-rate")
}

// BenchmarkBaseline_ChessLostResume is the complementary positive case:
// the lost-resume fault triggers on the third task_resume executed — an
// order property — so systematic exploration finds it deterministically
// on the first schedule.
func BenchmarkBaseline_ChessLostResume(b *testing.B) {
	var firstAt float64
	found := 0
	for i := 0; i < b.N; i++ {
		res, err := chess.Explore(chess.Config{
			Run: core.Config{
				RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
				Factory: app.SpinFactory(),
				Kernel:  pcore.Config{Faults: pcore.FaultPlan{DropResumeEvery: 3}},
			},
			Sources: [][]string{
				{"TC", "TS", "TR", "TS", "TR"},
				{"TC", "TS", "TR"},
			},
			PreemptionBound: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Bugs) > 0 {
			found++
			firstAt += float64(res.FirstBugAt)
		}
	}
	b.ReportMetric(float64(found)/float64(b.N), "discovery-rate")
	if found > 0 {
		b.ReportMetric(firstAt/float64(found), "schedules-to-bug")
	}
}

// --- Campaign engine: sharded trial execution ------------------------------------------------

// benchCampaign measures the 32-trial quicksort-stress campaign at a
// given parallelism. Trials are independent and deterministic in
// (Config, Seed), so every row below computes the identical result —
// the wall-clock ratio between rows is pure engine speedup.
func benchCampaign(b *testing.B, parallelism int) {
	var cmds float64
	for i := 0; i < b.N; i++ {
		res, err := core.RunCampaign(core.CampaignConfig{
			Base: core.Config{
				RE: pfa.PCoreRE, PD: pfa.PCoreDistribution(),
				N: 16, S: 24, Op: pattern.OpRoundRobin, Seed: 1,
				Factory: app.QuicksortFactory(99),
			},
			Trials: 32, KeepGoing: true, Parallelism: parallelism,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Trials != 32 {
			b.Fatalf("ran %d trials", res.Trials)
		}
		cmds += float64(res.TotalCommands)
	}
	b.ReportMetric(cmds/float64(b.N), "cmds/op")
	if d := b.Elapsed().Seconds(); d > 0 {
		b.ReportMetric(32*float64(b.N)/d, "trials/s")
	}
}

func BenchmarkCampaign_Sequential(b *testing.B) { benchCampaign(b, 1) }
func BenchmarkCampaign_Parallel2(b *testing.B)  { benchCampaign(b, 2) }
func BenchmarkCampaign_Parallel4(b *testing.B)  { benchCampaign(b, 4) }
func BenchmarkCampaign_Parallel8(b *testing.B)  { benchCampaign(b, 8) }

// BenchmarkCampaign_PFACache isolates the compiled-PFA cache: a full
// Glushkov construction per call versus the memoized lookup the
// campaign hot path now performs.
func BenchmarkCampaign_PFACache(b *testing.B) {
	pd := pfa.PCoreDistribution()
	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pfa.FromRegex(pfa.PCoreRE, pd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		if _, err := pfa.Compile(pfa.PCoreRE, pd); err != nil {
			b.Fatal(err) // warm the entry
		}
		before := pfa.CompileCount()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pfa.Compile(pfa.PCoreRE, pd); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if pfa.CompileCount() != before {
			b.Fatal("cache missed")
		}
	})
}

// --- End-to-end throughput -------------------------------------------------------------------

// BenchmarkEndToEnd_CommandThroughput measures raw remote-command
// throughput of the platform (bridge + committee + kernel) under a
// benign pattern — the substrate cost every experiment above pays.
func BenchmarkEndToEnd_CommandThroughput(b *testing.B) {
	var cmds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ptest.Run(ptest.Config{
			RE: ptest.PCoreRE, PD: ptest.PCoreDistribution(),
			N: 8, S: 16, Op: ptest.OpRoundRobin, Seed: uint64(i),
			Factory: ptest.SpinFactory(),
		})
		if err != nil {
			b.Fatal(err)
		}
		cmds += float64(out.CommandsIssued)
	}
	b.StopTimer()
	b.ReportMetric(cmds/float64(b.N), "cmds/op")
}
