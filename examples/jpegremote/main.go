// Jpegremote runs the workload the paper's introduction motivates the
// master-slave model with (its reference [2]: heterogeneous
// multiprocessor JPEG): master feeders stream 8×8 image blocks to DSP
// encoder tasks over the shared-memory data rings; each slave task runs
// the DCT → quantize → run-length pipeline and streams the code back;
// the master decodes and verifies every block. The second half repeats
// the run under pTest suspend/resume stress to show the encoder's
// streaming state survives arbitrary task perturbation.
package main

import (
	"fmt"
	"log"

	"repro/internal/app"
	"repro/internal/bridge"
	"repro/internal/master"
	"repro/internal/platform"
)

func run(name string, stress bool) {
	p, err := platform.New(platform.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown()
	const tasks, blocks = 4, 8
	j, err := app.NewJPEGRemote(p, tasks, blocks, 16, 2024)
	if err != nil {
		log.Fatal(err)
	}
	if stress {
		p.Master.Spawn("stress", func(ctx *master.Ctx) {
			for round := 0; round < 12; round++ {
				for logical := uint32(0); logical < tasks; logical++ {
					rep, err := p.Client.Call(ctx, bridge.CodeTS, logical, 0xffffffff)
					if err != nil {
						return
					}
					ctx.Compute(700)
					if rep.Status == bridge.StatusOK {
						if _, err := p.Client.Call(ctx, bridge.CodeTR, logical, 0xffffffff); err != nil {
							return
						}
					}
					ctx.Compute(700)
				}
			}
		})
	}
	p.RunUntilQuiescent(50_000_000)
	fmt.Printf("=== %s ===\n", name)
	fmt.Printf("blocks verified: %d/%d   failed: %d   max pixel error: %d\n",
		j.Verified, tasks*blocks, j.Failed, j.MaxError)
	fmt.Printf("virtual time: %d cycles over %d steps\n", p.Now(), p.Steps())
	calls, _ := p.Slave.ServiceStats()
	fmt.Printf("services: TC=%d TS=%d TR=%d\n", calls["TC"], calls["TS"], calls["TR"])
}

func main() {
	run("plain encode", false)
	run("encode under suspend/resume stress", true)
}
