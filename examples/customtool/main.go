// Customtool: register an out-of-tree testing tool and an out-of-tree
// workload through the public facade, then sweep them next to the
// built-ins — no edits to the suite, CLI or daemon. The "tool" here is
// deliberately trivial (a fixed-priority stress variant of the
// ConTest-style runner via the pct-like remote-command plane is left
// to internal/tool/pct.go); what this example demonstrates is the
// seam: Register once, use everywhere.
package main

import (
	"fmt"
	"log"

	"repro/ptest"
)

// burstTool issues every task a burst of suspends/resumes at a fixed
// cadence — a minimal but real scheduling perturbation implemented
// entirely on top of the public ContestConfig runner (noise at fixed
// probability 1 over a window is approximated here by a high noise_p).
type burstTool struct{}

func (burstTool) Name() string                              { return "burst" }
func (burstTool) Doc() string                               { return "example: fixed high-noise burst perturbation" }
func (burstTool) Axes() ptest.ToolAxes                      { return ptest.ToolAxes{} }
func (burstTool) Validate(s ptest.ToolSpec) error           { return nil }
func (burstTool) Defaulted(s ptest.ToolSpec) ptest.ToolSpec { return s }
func (burstTool) Label(s ptest.ToolSpec) string             { return s.DisplayLabel() }
func (burstTool) Run(env ptest.ToolEnv) (ptest.CampaignSummary, error) {
	res, err := ptest.RunContestCampaign(ptest.ContestConfig{
		Seed: env.Seed, NoiseP: 0.9, Tasks: env.N,
		NewFactory: env.NewFactory, Kernel: env.Kernel,
		MaxSteps: env.MaxSteps, Parallelism: env.Parallelism,
	}, env.Trials, env.KeepGoing)
	if err != nil {
		return ptest.CampaignSummary{}, err
	}
	return res.Summary(), nil
}

func main() {
	ptest.RegisterTool(burstTool{})
	// The workload seam is the same one layer down: a registered name
	// resolves in specs, cell IDs and the result store immediately. The
	// spec's knobs arrive defaulted in the builder — here Items sizes a
	// deliberately overfull producer/consumer ring.
	ptest.RegisterWorkload("prodcons-burst", "example: producer/consumer at double item load",
		func(s ptest.WorkloadSpec, n int) func() ptest.Factory {
			items := 2 * s.Items
			return func() ptest.Factory { return ptest.ProducerConsumer(items) }
		})

	spec := &ptest.SuiteSpec{
		Name:      "customtool",
		Trials:    3,
		KeepGoing: true,
		MaxSteps:  300000,
		Workloads: []ptest.WorkloadSpec{{Name: "prodcons-burst", Items: 10}},
		Ops:       []string{"roundrobin"},
		Points:    []ptest.SuitePoint{{N: 4, S: 8}},
		Tools: []ptest.ToolSpec{
			{Name: "burst"},         // the tool registered above
			{Name: "pct", Depth: 3}, // the built-in PCT scheduler
			{Name: "contest"},       // the classic noise baseline
		},
	}
	rep, err := ptest.RunSuite(spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range rep.Cells {
		fmt.Printf("%-24s trials=%d bugs=%d bug_rate=%.2f\n",
			c.ID, c.Summary.Trials, c.Summary.Bugs, c.Summary.BugRate)
	}
}
