// Stress16 reproduces the paper's first case study: pTest keeps sixteen
// active quicksort tasks (each sorting 128 two-byte integers on a
// 512-byte stack) under continuous create/delete churn. With the
// garbage-collection fault armed the slave kernel crashes — "the crash
// of pCore that was caused by the failure of garbage collection" — and
// the bug detector captures it with its reproduction journal; without
// the fault the identical stress finishes clean.
package main

import (
	"fmt"
	"log"

	"repro/ptest"
)

func run(name string, faults ptest.FaultPlan) {
	res, err := ptest.RunCampaign(ptest.CampaignConfig{
		Base: ptest.Config{
			RE:      ptest.PCoreRE,
			PD:      ptest.PCoreDistribution(),
			N:       16, // the paper's sixteen concurrent tasks
			S:       24,
			Op:      ptest.OpRoundRobin,
			Seed:    1,
			Factory: ptest.QuicksortFactory(99),
			Kernel:  ptest.KernelConfig{GCEvery: 4, Faults: faults},
		},
		Trials: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n", name)
	fmt.Printf("trials: %d, commands: %d, clean finishes: %d\n",
		res.Trials, res.TotalCommands, res.CleanFinishes)
	if len(res.Bugs) == 0 {
		fmt.Println("no failures detected")
		return
	}
	fmt.Printf("first failure at trial %d:\n  %s\n", res.FirstBugTrial, res.Bugs[0])
	if f := res.Bugs[0].Fault; f != nil {
		fmt.Printf("  kernel fault: %s (%s)\n", f.Reason, f.Detail)
	}
}

func main() {
	run("healthy kernel", ptest.FaultPlan{})
	run("GC leak fault armed", ptest.FaultPlan{GCLeakEvery: 2})
}
