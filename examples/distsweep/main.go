// Distsweep explores the paper's stated future-work question — "the
// influence of probability distributions on the generation of test
// patterns" — by sweeping several PDs over the same pCore automaton and
// measuring pattern entropy, duplicate rate, service/transition coverage
// and time-to-bug against the GC-fault stress workload.
package main

import (
	"fmt"
	"log"

	"repro/ptest"
)

type sweepPoint struct {
	name string
	pd   ptest.Distribution
}

func points() []sweepPoint {
	return []sweepPoint{
		{"figure5 (paper)", ptest.PCoreDistribution()},
		{"uniform", nil},
		{"churn-heavy", ptest.Distribution{ // favor create/delete cycles
			ptest.StartLabel: {"TC": 1},
			"TC":             {"TCH": 0.05, "TS": 0.05, "TD": 0.6, "TY": 0.3},
			"TCH":            {"TCH": 0.1, "TS": 0.1, "TD": 0.5, "TY": 0.3},
			"TS":             {"TR": 1},
			"TR":             {"TCH": 0.1, "TS": 0.1, "TD": 0.5, "TY": 0.3},
		}},
		{"chanprio-skewed", ptest.Distribution{ // almost only priority churn
			ptest.StartLabel: {"TC": 1},
			"TC":             {"TCH": 0.94, "TS": 0.02, "TD": 0.02, "TY": 0.02},
			"TCH":            {"TCH": 0.94, "TS": 0.02, "TD": 0.02, "TY": 0.02},
			"TS":             {"TR": 1},
			"TR":             {"TCH": 0.94, "TS": 0.02, "TD": 0.02, "TY": 0.02},
		}},
	}
}

func main() {
	fmt.Printf("%-18s %8s %6s %8s %8s %12s\n",
		"distribution", "entropy", "dups", "svc-cov", "tr-cov", "cmds-to-bug")
	for _, pt := range points() {
		machine, err := ptest.NewPFA(ptest.PCoreRE, pt.pd)
		if err != nil {
			log.Fatal(err)
		}
		entropy, err := machine.EntropyRate()
		if err != nil {
			log.Fatal(err)
		}

		// Generation-quality metrics over a fixed pattern budget.
		out, err := ptest.Run(ptest.Config{
			RE: ptest.PCoreRE, PD: pt.pd,
			N: 12, S: 16, Op: ptest.OpRoundRobin, Seed: 7,
			Dedup:   true,
			Factory: ptest.SpinFactory(),
		})
		if err != nil {
			log.Fatal(err)
		}

		// Time-to-bug against the GC-fault stress (campaign across seeds;
		// count commands issued until the crash is first detected).
		cmdsToBug := -1
		res, err := ptest.RunCampaign(ptest.CampaignConfig{
			Base: ptest.Config{
				RE: ptest.PCoreRE, PD: pt.pd,
				N: 12, S: 16, Op: ptest.OpRoundRobin, Seed: 1,
				Factory: ptest.QuicksortFactory(3),
				Kernel:  ptest.KernelConfig{GCEvery: 4, Faults: ptest.FaultPlan{GCLeakEvery: 2}},
			},
			Trials: 6,
		})
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Bugs) > 0 {
			cmdsToBug = res.TotalCommands
		}
		fmt.Printf("%-18s %8.3f %6d %8.2f %8.2f %12d\n",
			pt.name, entropy, out.DuplicatesRemoved,
			out.Coverage.Services, out.Coverage.Transitions, cmdsToBug)
	}
	fmt.Println("\ncmds-to-bug = total commands across the campaign until the GC crash")
	fmt.Println("was detected (-1: never found). Higher entropy → fewer duplicate")
	fmt.Println("patterns and broader transition coverage; churn-heavy PDs reach the")
	fmt.Println("allocation-path fault fastest.")
}
