// Diningphilosophers reproduces the paper's second case study: a buggy
// dining-philosophers program (three tasks, three mutually exclusive
// resources) whose deadlock only manifests under particular
// interleavings. The pattern merger's cyclic suspend/resume stress
// "forces these tasks to complete several sets of cyclic execution
// sequences" and pTest discovers the deadlock; the sequential op — and
// plain functional execution — never does. The example also compares
// the ConTest-style noise baseline.
package main

import (
	"fmt"
	"log"

	"repro/ptest"
)

// suspendResumeStress prunes TD so the stress is pure suspend/resume.
func suspendResumeStress() ptest.Distribution {
	return ptest.Distribution{
		ptest.StartLabel: {"TC": 1},
		"TC":             {"TS": 1},
		"TS":             {"TR": 1},
		"TR":             {"TS": 1, "TD": 0},
	}
}

func main() {
	const trials = 10
	for _, op := range []ptest.Op{ptest.OpCyclic, ptest.OpRandom, ptest.OpSequential} {
		found := 0
		firstCmds := -1
		for seed := uint64(0); seed < trials; seed++ {
			factory, _ := ptest.Philosophers(3, 100000, false)
			out, err := ptest.Run(ptest.Config{
				RE:         "TC (TS TR)+ TD$",
				PD:         suspendResumeStress(),
				N:          3,
				S:          41,
				Op:         op,
				Seed:       seed,
				CommandGap: 100,
				Factory:    factory,
				Kernel:     ptest.KernelConfig{Quantum: 1 << 30},
			})
			if err != nil {
				log.Fatal(err)
			}
			if out.Bug != nil && out.Bug.Kind == ptest.BugDeadlock {
				found++
				if firstCmds < 0 {
					firstCmds = out.CommandsIssued
				}
			}
		}
		fmt.Printf("op=%-11s deadlock found in %2d/%d trials", op, found, trials)
		if firstCmds >= 0 {
			fmt.Printf(" (first discovery after %d commands)", firstCmds)
		}
		fmt.Println()
	}

	// ConTest-style baseline: random yields at synchronization points.
	found := 0
	for seed := uint64(0); seed < trials; seed++ {
		factory, _ := ptest.Philosophers(3, 2000, false)
		out, err := ptest.RunContest(ptest.ContestConfig{
			Seed: seed, NoiseP: 0.3, Tasks: 3, Factory: factory,
			Kernel: ptest.KernelConfig{Quantum: 1 << 30},
		})
		if err != nil {
			log.Fatal(err)
		}
		if out.Bug != nil && out.Bug.Kind == ptest.BugDeadlock {
			found++
		}
	}
	fmt.Printf("baseline=contest deadlock found in %2d/%d trials\n", found, trials)

	// One reproduction dump for the record.
	factory, _ := ptest.Philosophers(3, 100000, false)
	out, err := ptest.Run(ptest.Config{
		RE: "TC (TS TR)+ TD$", PD: suspendResumeStress(),
		N: 3, S: 41, Op: ptest.OpCyclic, Seed: 0, CommandGap: 100,
		Factory: factory,
		Kernel:  ptest.KernelConfig{Quantum: 1 << 30},
	})
	if err != nil {
		log.Fatal(err)
	}
	if out.Bug != nil {
		fmt.Println("\nexample report:", out.Bug)
	}
}
