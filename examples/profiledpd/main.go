// Profiledpd demonstrates the paper's probability-acquisition workflow:
// "most users do not know the probability distributions ... the
// knowledge about probability distributions can be learned through
// system profiling". A usage driver (standing in for real dual-core
// application software) exercises the slave; a profiling collector taps
// the committee's executed-command stream; the learned conditional
// distribution is compared against the ground truth that drove the
// usage, then used to run an adaptive campaign.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/app"
	"repro/internal/committer"
	"repro/internal/pattern"
	"repro/internal/pfa"
	"repro/internal/platform"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/ptest"
)

func main() {
	// 1. Real usage: drive the slave with patterns drawn from the
	//    (hidden) ground-truth behaviour — Figure 5's distribution.
	truth := pfa.PCoreDistribution()
	machine, err := pfa.FromRegex(pfa.PCoreRE, truth)
	if err != nil {
		log.Fatal(err)
	}
	plat, err := platform.New(platform.Config{Factory: app.SpinFactory()})
	if err != nil {
		log.Fatal(err)
	}
	defer plat.Shutdown()

	collector := profile.NewCollector()
	collector.Attach(plat.Committee)

	rng := stats.New(2024)
	pats, err := machine.GenerateSet(rng, 12, 50, pfa.DefaultGenOptions())
	if err != nil {
		log.Fatal(err)
	}
	sources := make([][]string, len(pats))
	for i, p := range pats {
		sources[i] = p.Symbols
	}
	merged, err := pattern.Merge(sources, pattern.OpRoundRobin, nil, pattern.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cmt := committer.New(plat.Client, merged, nil, nil, plat.Now)
	plat.Master.Spawn("usage-driver", cmt.ThreadBody)
	plat.RunUntilQuiescent(5_000_000)
	fmt.Printf("profiled %d executed commands across %d tasks\n",
		collector.Commands(), len(collector.Traces()))

	// 2. Learn the conditional distribution from the observed traces.
	learned, res, err := collector.Learn(pfa.PCoreRE, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned from %d traces (%d rejected), %d transitions\n",
		res.Traces, res.RejectedTraces, res.Transitions)
	fmt.Printf("max divergence from ground truth: %.3f\n\n",
		profile.Divergence(learned, truth))

	froms := make([]string, 0, len(learned))
	for from := range learned {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		syms := make([]string, 0, len(learned[from]))
		for sym := range learned[from] {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		fmt.Printf("  after %-3s:", from)
		for _, sym := range syms {
			fmt.Printf("  %s=%.2f", sym, learned[from][sym])
		}
		fmt.Println()
	}

	// 3. Use the learned distribution for adaptive testing.
	out, err := ptest.Run(ptest.Config{
		RE: ptest.PCoreRE, PD: learned,
		N: 8, S: 20, Op: ptest.OpRoundRobin, Seed: 9,
		Factory: ptest.SpinFactory(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadaptive campaign with learned PD: %d commands, coverage %s\n",
		out.CommandsIssued, out.Coverage)
	if out.Bug != nil {
		fmt.Println("FAILURE:", out.Bug)
	}
}
