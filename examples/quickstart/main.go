// Quickstart: run one adaptive test against the simulated platform with
// the paper's pCore PFA (Figure 5) and a benign workload, then print the
// outcome. This is the smallest complete use of the public API.
package main

import (
	"fmt"
	"log"

	"repro/ptest"
)

func main() {
	out, err := ptest.Run(ptest.Config{
		RE:      ptest.PCoreRE,             // equation (2)
		PD:      ptest.PCoreDistribution(), // Figure 5 probabilities
		N:       4,                         // four test patterns → four slave tasks
		S:       12,                        // twelve services per pattern
		Op:      ptest.OpRoundRobin,        // fair interleaving
		Seed:    1,
		Factory: ptest.SpinFactory(), // benign controllable tasks
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("issued %d remote commands in %d virtual cycles (%d steps)\n",
		out.CommandsIssued, out.Duration, out.Steps)
	fmt.Printf("coverage: %s\n", out.Coverage)
	fmt.Printf("reply statuses: %v\n", out.StatusCounts)
	for i, p := range out.Patterns {
		fmt.Printf("T[%d] = %v\n", i+1, p.Symbols)
	}
	if out.Bug != nil {
		fmt.Println("FAILURE:", out.Bug)
		fmt.Print(out.Bug.Journal)
		return
	}
	fmt.Println("verdict: clean")
}
