// Figure1 runs the paper's introductory example (Figure 1) on the
// simulated platform: slave processes S1 and S2 spin on shared-memory
// flags x and y while master processes M1 and M2 resume them remotely.
// The good order completes; the bad order leaves both processes spinning
// in their b/c and g/h states forever — the synchronization anomaly the
// bug detector reports as livelock, with states d, e, i, j unreachable.
package main

import (
	"fmt"
	"log"

	"repro/internal/app"
	"repro/internal/detector"
	"repro/internal/platform"
)

func run(name string, forceBug bool) {
	p, err := platform.New(platform.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown()
	xAddr, yAddr, err := app.Figure1(p, forceBug)
	if err != nil {
		log.Fatal(err)
	}
	det := detector.New(p, nil, detector.Options{CheckEvery: 16, ProgressWindow: 50000})
	report := det.Run(5_000_000)

	x, _ := p.SoC.SRAM.Read32(xAddr)
	y, _ := p.SoC.SRAM.Read32(yAddr)
	fmt.Printf("=== %s ===\n", name)
	fmt.Printf("final shared memory: x=%d y=%d (t=%d cycles)\n", x, y, p.Now())
	if report == nil {
		fmt.Println("both processes reached their end states (d,e,i,j executed)")
	} else {
		fmt.Println("DETECTED:", report)
		fmt.Println("states d, e, i, j unreachable — the paper's deadlocked order")
	}
}

func main() {
	run("good order: L f g K i j a b d e", false)
	run("bad order:  K a L f g h b c g h ...", true)
}
